//! EXT-LOCALITY — predicting each workload's fate from its trace.
//!
//! Equations 1–2 of the paper describe memory time as a function of
//! workload locality, but leave `A_page` (and the cache behaviour) as
//! unknowns. Here we *measure* them: each kernel runs once on a traced
//! local machine; exact page-cache and CPU-cache simulations over the trace
//! yield its fault and miss counts; plugging those into extended forms of
//! Eqs. 1–2 predicts the swap and remote-memory execution times — which we
//! then validate by replaying the identical trace on the real backends.
//!
//! Extended equations (the paper's, with the cache/compute terms made
//! explicit):
//!
//! ```text
//! T_swap   ≈ T_cpu + allocs·L_malloc + walks·L_walk
//!          + hits·L_hit + misses·(L_hit + L_dram)
//!          + minor·L_minor + major·L_page + pages_out·L_page
//! T_remote ≈ T_cpu + allocs·L_malloc + walks·L_walk
//!          + hits·L_hit + misses·(L_hit + L_remote) + wb·L_remote
//! ```

use crate::table::Table;
use crate::Scale;
use cohfree_core::backend::{AllocPolicy, RemoteMemorySpace, SwapConfig, SwapSpace};
use cohfree_core::trace::{
    cache_profile, compute_total, page_profile, replay, tlb_misses, Op, Tracer,
};
use cohfree_core::world::World;
use cohfree_core::{ClusterConfig, LocalMachine, SimDuration};
use cohfree_workloads::parsec::{BlackScholes, Canneal, StreamCluster};
use cohfree_workloads::BTree;

/// One kernel's prediction-vs-measurement row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Measured `A_page` (accesses per major fault; `inf` if resident).
    pub a_page: f64,
    /// CPU-cache miss ratio from the trace.
    pub miss_ratio: f64,
    /// Eq. 1 (extended) prediction for remote swap, ms.
    pub swap_pred_ms: f64,
    /// Replayed (simulated) remote-swap time, ms.
    pub swap_meas_ms: f64,
    /// Eq. 2 (extended) prediction for remote memory, ms.
    pub remote_pred_ms: f64,
    /// Replayed (simulated) remote-memory time, ms.
    pub remote_meas_ms: f64,
}

fn trace_kernel(which: &'static str, scale: Scale) -> Vec<Op> {
    let mut t = Tracer::new(LocalMachine::new(ClusterConfig::prototype(), 8 << 30));
    match which {
        "blackscholes" => {
            let k = BlackScholes {
                options: scale.pick(20_000, 80_000, 500_000),
                passes: 1,
                seed: 61,
            };
            k.run(&mut t);
        }
        "canneal" => {
            let k = Canneal {
                elements: scale.pick(120_000, 400_000, 2_000_000),
                steps: scale.pick(2_000, 8_000, 50_000),
                temperature: 100.0,
                seed: 62,
            };
            k.run(&mut t);
        }
        "btree-search" => {
            let keys = super::random_sorted_keys(scale.pick(30_000, 120_000, 1_000_000), 63);
            let tree = BTree::bulk_load(&mut t, &keys, 167);
            let mut rng = cohfree_core::Rng::new(64);
            for _ in 0..scale.pick(400u64, 1_500, 20_000) {
                tree.search(&mut t, keys[rng.below(keys.len() as u64) as usize]);
            }
        }
        "streamcluster" => {
            let k = StreamCluster {
                block_points: 1_024,
                dims: 8,
                centers: 4,
                blocks: scale.pick(2, 6, 20),
                seed: 65,
            };
            k.run(&mut t);
        }
        other => panic!("unknown kernel {other}"),
    }
    t.into_parts().1
}

/// Analyze + predict + validate one kernel.
pub fn run_kernel(which: &'static str, scale: Scale, cache_pages: usize) -> Row {
    let cfg = ClusterConfig::prototype();
    let trace = trace_kernel(which, scale);

    // --- analysis over the trace ---
    let pages = page_profile(&trace, cache_pages, cfg.cache.line_bytes as u64);
    let cpu_cache = cache_profile(&trace, cfg.cache);
    let t_cpu = compute_total(&trace);
    let walks = tlb_misses(&trace, cfg.tlb.entries, cfg.cache.line_bytes as u64)
        .saturating_sub(pages.minor_faults + pages.major_faults);
    let allocs = trace
        .iter()
        .filter(|op| matches!(op, Op::Alloc { .. }))
        .count() as f64;

    // --- calibration constants straight from the configuration ---
    let l_hit = cfg.os.cache_hit.as_ns_f64();
    let l_dram = 65.0;
    let w = World::new(cfg);
    let l_remote = w
        .estimate_remote_read_latency(super::n(1), super::n(2), 64)
        .as_ns_f64();
    // Ethernet page op incl. kernel fault overhead (the default transport).
    let l_page = cfg.os.fault_overhead.as_ns_f64() + 100_000.0 + 4096.0 / 125.0 * 1_000.0;
    let l_minor = SimDuration::us(2).as_ns_f64();

    let l_walk = cfg.os.tlb_walk.as_ns_f64();
    let l_malloc = cfg.os.malloc_overhead.as_ns_f64();
    let ns = |x: f64| x / 1e6; // ns -> ms
    let swap_pred_ms = ns(t_cpu.as_ns_f64()
        + allocs * l_malloc
        + walks as f64 * l_walk
        + cpu_cache.hits as f64 * l_hit
        + cpu_cache.misses as f64 * (l_hit + l_dram)
        + pages.minor_faults as f64 * l_minor
        + pages.major_faults as f64 * l_page
        + pages.pages_out as f64 * l_page);
    let remote_pred_ms = ns(t_cpu.as_ns_f64()
        + allocs * l_malloc
        + walks as f64 * l_walk
        + cpu_cache.hits as f64 * l_hit
        + cpu_cache.misses as f64 * (l_hit + l_remote)
        + cpu_cache.writebacks as f64 * l_remote);

    // --- ground truth: replay the identical trace on the real backends ---
    let mut swap = SwapSpace::remote(
        cfg,
        super::n(1),
        SwapConfig {
            cache_pages,
            ..SwapConfig::default()
        },
    );
    let swap_meas_ms = replay(&mut swap, &trace).as_ms_f64();
    let mut remote = RemoteMemorySpace::new(cfg, super::n(1), AllocPolicy::AlwaysRemote);
    let remote_meas_ms = replay(&mut remote, &trace).as_ms_f64();

    Row {
        kernel: which,
        a_page: pages.accesses_per_page,
        miss_ratio: cpu_cache.misses as f64 / cpu_cache.accesses.max(1) as f64,
        swap_pred_ms,
        swap_meas_ms,
        remote_pred_ms,
        remote_meas_ms,
    }
}

/// Run the four kernels (swap resident set scaled per tier).
pub fn run(scale: Scale) -> Vec<Row> {
    let cache_pages = scale.pick(512, 2_048, 16_384);
    crate::parallel_map(
        vec!["blackscholes", "canneal", "btree-search", "streamcluster"],
        |k| run_kernel(k, scale, cache_pages),
    )
}

/// Render the study as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "EXT-LOCALITY — trace-driven Eq. 1-2 predictions vs. full simulation",
        &[
            "kernel",
            "A_page",
            "miss_ratio",
            "swap_pred_ms",
            "swap_meas_ms",
            "remote_pred_ms",
            "remote_meas_ms",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.kernel.into(),
            if r.a_page.is_finite() {
                format!("{:.0}", r.a_page)
            } else {
                "inf".into()
            },
            format!("{:.3}", r.miss_ratio),
            format!("{:.2}", r.swap_pred_ms),
            format!("{:.2}", r.swap_meas_ms),
            format!("{:.2}", r.remote_pred_ms),
            format!("{:.2}", r.remote_meas_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_track_measurements() {
        for r in run(Scale::Smoke) {
            let swap_err = (r.swap_pred_ms - r.swap_meas_ms).abs() / r.swap_meas_ms;
            assert!(
                swap_err < 0.20,
                "{}: swap pred {} vs meas {} ({swap_err:.2} rel err)",
                r.kernel,
                r.swap_pred_ms,
                r.swap_meas_ms
            );
            let rem_err = (r.remote_pred_ms - r.remote_meas_ms).abs() / r.remote_meas_ms;
            assert!(
                rem_err < 0.25,
                "{}: remote pred {} vs meas {} ({rem_err:.2} rel err)",
                r.kernel,
                r.remote_pred_ms,
                r.remote_meas_ms
            );
        }
    }

    #[test]
    fn locality_ordering_is_sensible() {
        let rows = run(Scale::Smoke);
        let get = |k: &str| rows.iter().find(|r| r.kernel == k).unwrap().clone();
        // streamcluster fits: no major faults at all.
        assert!(get("streamcluster").a_page.is_infinite());
        // canneal has the worst CPU-cache locality of the faulting kernels.
        assert!(get("canneal").miss_ratio > get("blackscholes").miss_ratio);
    }
}
