//! EXT-DB — the database query study the paper names as its next step.
//!
//! Conclusions, Section VI: "store indexes or the entire database in
//! memory, and then study the execution time for different queries". A
//! heap table with hash + B-tree indexes lives entirely in each memory
//! system; we measure the four classic query types. Expected (and
//! measured) pattern, following Eqs. 1–2:
//!
//! * point queries (one random row): remote memory ≫ remote swap,
//! * narrow ranges: remote memory still wins (index hops are random),
//! * full-table scans: sequential — the swap baseline amortizes whole
//!   pages and closes most of the gap,
//! * inserts: index maintenance is pointer-chasing — swap suffers.

use crate::table::Table;
use crate::Scale;
use cohfree_core::backend::{AllocPolicy, RemoteMemorySpace, SwapConfig, SwapSpace};
use cohfree_core::{ClusterConfig, LocalMachine, MemSpace, Rng};
use cohfree_workloads::db::{Database, Row, ATTRS};

/// Sizing of the study.
#[derive(Debug, Clone, Copy)]
pub struct Sizing {
    /// Rows loaded before measuring.
    pub rows: u64,
    /// Point queries measured.
    pub points: u64,
    /// Range queries measured (each ~0.5% selectivity).
    pub ranges: u64,
    /// Full scans measured.
    pub scans: u64,
    /// Inserts measured.
    pub inserts: u64,
    /// Swap resident-set bound in pages.
    pub cache_pages: usize,
}

/// Per-tier sizing: the database is several times the swap resident set.
pub fn sizing(scale: Scale) -> Sizing {
    let rows = scale.pick(30_000u64, 250_000, 2_000_000);
    Sizing {
        rows,
        points: scale.pick(200, 1_000, 20_000),
        ranges: scale.pick(10, 30, 200),
        scans: scale.pick(1, 2, 4),
        inserts: scale.pick(200, 1_000, 20_000),
        // Heap+indexes ≈ 90 B/row; resident set holds about a fifth.
        cache_pages: (rows as usize * 90 / 4096 / 5).max(64),
    }
}

/// One backend's measured query latencies (microseconds per query).
#[derive(Debug, Clone)]
pub struct RowOut {
    /// Backend label.
    pub backend: &'static str,
    /// Mean point-query time.
    pub point_us: f64,
    /// Mean range-query time (~0.5% selectivity).
    pub range_us: f64,
    /// Mean full-scan time.
    pub scan_us: f64,
    /// Mean insert time.
    pub insert_us: f64,
}

fn mk_row(id: u64, rng: &mut Rng) -> Row {
    let mut attrs = [0u64; ATTRS];
    for a in &mut attrs {
        *a = rng.below(1_000);
    }
    Row { id, attrs }
}

fn run_backend<M: MemSpace>(label: &'static str, mut m: M, sz: Sizing) -> RowOut {
    let mut rng = Rng::new(0xDB);
    let id_space = sz.rows * 4; // sparse ids so ranges have gaps
    let mut db = Database::create(&mut m, sz.rows + sz.inserts + 16);
    // Populate (untimed phase).
    let mut loaded = 0;
    while loaded < sz.rows {
        let r = mk_row(rng.below(id_space), &mut rng);
        if db.insert(&mut m, r) {
            loaded += 1;
        }
    }

    // Point queries.
    let t0 = m.now();
    for _ in 0..sz.points {
        db.point(&mut m, rng.below(id_space));
    }
    let point_us = m.now().since(t0).as_us_f64() / sz.points as f64;

    // Range queries, ~0.5% of the id space each.
    let span = id_space / 200;
    let t0 = m.now();
    for _ in 0..sz.ranges {
        let lo = rng.below(id_space - span);
        db.range_sum(&mut m, lo, lo + span, 1);
    }
    let range_us = m.now().since(t0).as_us_f64() / sz.ranges as f64;

    // Full scans.
    let t0 = m.now();
    for attr in 0..sz.scans {
        db.scan_sum(&mut m, (attr % ATTRS as u64) as usize);
    }
    let scan_us = m.now().since(t0).as_us_f64() / sz.scans as f64;

    // Inserts (fresh ids beyond the populated space).
    let t0 = m.now();
    for k in 0..sz.inserts {
        db.insert(&mut m, mk_row(id_space + k + 1, &mut rng));
    }
    let insert_us = m.now().since(t0).as_us_f64() / sz.inserts as f64;

    RowOut {
        backend: label,
        point_us,
        range_us,
        scan_us,
        insert_us,
    }
}

/// Run all three backends.
pub fn run(scale: Scale) -> Vec<RowOut> {
    let sz = sizing(scale);
    let cfg = ClusterConfig::prototype();
    vec![
        run_backend("local", LocalMachine::new(cfg, 128 << 30), sz),
        run_backend(
            "remote memory",
            RemoteMemorySpace::new(cfg, super::n(1), AllocPolicy::AlwaysRemote),
            sz,
        ),
        run_backend(
            "remote swap",
            SwapSpace::remote(
                cfg,
                super::n(1),
                SwapConfig {
                    cache_pages: sz.cache_pages,
                    ..SwapConfig::default()
                },
            ),
            sz,
        ),
    ]
}

/// Render the study as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "EXT-DB — query latencies (us) on an in-memory database",
        &["backend", "point_us", "range_us", "scan_us", "insert_us"],
    );
    for r in &rows {
        t.row(vec![
            r.backend.into(),
            format!("{:.2}", r.point_us),
            format!("{:.1}", r.range_us),
            format!("{:.1}", r.scan_us),
            format!("{:.2}", r.insert_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_shape_follows_the_locality_story() {
        let rows = run(Scale::Smoke);
        let get = |b: &str| rows.iter().find(|r| r.backend == b).unwrap().clone();
        let local = get("local");
        let remote = get("remote memory");
        let swap = get("remote swap");
        // Random-access queries: remote memory beats swap clearly.
        assert!(
            swap.point_us > 3.0 * remote.point_us,
            "point: swap {} vs remote {}",
            swap.point_us,
            remote.point_us
        );
        assert!(
            swap.insert_us > 2.0 * remote.insert_us,
            "insert: swap {} vs remote {}",
            swap.insert_us,
            remote.insert_us
        );
        // Sequential scans: the page-amortizing swap closes most of the gap
        // (ratio far below the point-query ratio).
        let point_ratio = swap.point_us / remote.point_us;
        let scan_ratio = swap.scan_us / remote.scan_us;
        assert!(
            scan_ratio < point_ratio / 2.0,
            "scan ratio {scan_ratio} vs point ratio {point_ratio}"
        );
        // Local is the floor everywhere.
        assert!(local.point_us <= remote.point_us);
        assert!(local.scan_us <= remote.scan_us * 1.05);
    }
}
