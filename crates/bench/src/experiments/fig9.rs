//! Figure 9 — B-tree search time vs. fanout under remote swap.
//!
//! A tree of N random keys lives in a remote-swap space whose resident set
//! is a fraction of the tree; the average search time is swept over the
//! number of children per node. The paper's U-shape: tiny fanouts mean tall
//! trees (many page faults per search), huge fanouts mean nodes spanning
//! several pages (binary search inside a node faults repeatedly); the
//! optimum sits where a node fills — but does not exceed — a page
//! (the paper found ≈168 children).

use crate::table::Table;
use crate::Scale;
use cohfree_core::backend::{SwapConfig, SwapSpace};
use cohfree_core::{MemSpace, Rng};
use cohfree_workloads::BTree;

/// One fanout measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Children per node (`max_keys + 1`).
    pub children: usize,
    /// Mean time per search in microseconds.
    pub search_us: f64,
    /// Major faults per search.
    pub faults_per_search: f64,
    /// Tree height.
    pub height: u32,
}

/// Experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct Sizing {
    /// Keys in the tree.
    pub keys: usize,
    /// Random searches timed.
    pub searches: u64,
    /// Resident-set bound in pages.
    pub cache_pages: usize,
}

/// Paper-proportional sizing for each scale tier.
///
/// The tree is ~16× the resident set (the paper's swap scenario has a
/// footprint well beyond local memory), and the default key count is
/// chosen so that every fanout in the sweep yields the *same* tree height
/// — isolating the per-node page-span effect that produces the U's right
/// side, exactly as at the paper's 10 M keys.
pub fn sizing(scale: Scale) -> Sizing {
    let keys = scale.pick(40_000usize, 1_200_000, 10_000_000);
    Sizing {
        keys,
        searches: scale.pick(300u64, 2_000, 500_000),
        // ~24 B/key of tree; cache holds a sixteenth of it.
        cache_pages: (keys * 24 / 4096 / 16).max(16),
    }
}

/// Measure one fanout.
pub fn run_fanout(sz: Sizing, children: usize, seed: u64) -> Row {
    let max_keys = children - 1;
    let mut m = SwapSpace::remote(
        super::cluster(),
        super::n(1),
        SwapConfig {
            cache_pages: sz.cache_pages,
            ..SwapConfig::default()
        },
    );
    let keys = super::random_sorted_keys(sz.keys, seed);
    let tree = BTree::bulk_load(&mut m, &keys, max_keys);
    let mut rng = Rng::new(seed ^ 0xF1609);
    let faults0 = m.stats().major_faults;
    let t0 = m.now();
    for i in 0..sz.searches {
        // Half present keys, half uniform random probes.
        let k = if i % 2 == 0 {
            keys[rng.below(keys.len() as u64) as usize]
        } else {
            rng.next_u64()
        };
        tree.search(&mut m, k);
    }
    let elapsed = m.now().since(t0);
    Row {
        children,
        search_us: elapsed.as_us_f64() / sz.searches as f64,
        faults_per_search: (m.stats().major_faults - faults0) as f64 / sz.searches as f64,
        height: tree.height(),
    }
}

/// The fanout sweep of the figure.
pub fn children_sweep() -> Vec<usize> {
    vec![4, 8, 16, 32, 64, 128, 168, 224, 320, 512, 1024]
}

/// Run the full figure (one thread per fanout — points are independent).
pub fn run(scale: Scale) -> Vec<Row> {
    let sz = sizing(scale);
    crate::parallel_map(children_sweep(), |c| run_fanout(sz, c, 0x916))
}

/// Render the figure as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "Fig. 9 — b-tree search time vs. children per node (remote swap)",
        &["children", "height", "search_us", "faults_per_search"],
    );
    for r in &rows {
        t.row(vec![
            r.children.to_string(),
            r.height.to_string(),
            format!("{:.1}", r.search_us),
            format!("{:.2}", r.faults_per_search),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u_shape_with_interior_optimum() {
        let sz = Sizing {
            keys: 30_000,
            searches: 200,
            cache_pages: 16,
        };
        // Left side: tiny fanouts make tall trees that fault per level.
        let narrow = run_fanout(sz, 4, 7);
        let page_sized = run_fanout(sz, 255, 7); // node ≈ one page
        assert!(
            page_sized.search_us < narrow.search_us,
            "page-sized nodes ({}) must beat fanout 4 ({})",
            page_sized.search_us,
            narrow.search_us
        );
        assert!(narrow.faults_per_search > page_sized.faults_per_search);
        assert!(narrow.height > page_sized.height);
        // Right side, at *matched* tree height: nodes spanning many pages
        // fault repeatedly inside one node (the paper's alignment effect).
        let huge = run_fanout(sz, 2048, 7);
        assert_eq!(
            huge.height, page_sized.height,
            "heights must match by construction"
        );
        assert!(
            page_sized.search_us < huge.search_us,
            "page-sized nodes ({}) must beat fanout 2048 ({})",
            page_sized.search_us,
            huge.search_us
        );
        assert!(huge.faults_per_search > page_sized.faults_per_search);
    }
}
