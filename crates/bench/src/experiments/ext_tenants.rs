//! EXT-TENANTS — cluster-wide scalability with many simultaneous borrowers.
//!
//! The paper's abstract claims the prototype's "feasibility and its
//! scalability"; its figures stress one borrower or one server at a time.
//! This study runs the whole cluster the way it would actually be used: k
//! nodes simultaneously run memory-hungry processes, each borrowing from a
//! directory-chosen (nearest) donor and hammering it with two threads.
//!
//! Because every region is an independent coherency domain and nearest
//! placement localizes fabric traffic, per-tenant time should stay close to
//! the solo run as tenants are added — aggregate throughput scaling almost
//! linearly. That is the architecture's scalability argument made
//! measurable (and it is *not* true of a shared-server layout, which is
//! what Fig. 8 degrades).

use crate::table::Table;
use crate::Scale;
use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{NodeId, SimDuration, SimTime};

/// One measured tenant count.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Simultaneous borrower nodes.
    pub tenants: usize,
    /// Mean per-tenant completion time (µs).
    pub mean_time_us: f64,
    /// Worst per-tenant completion time (µs).
    pub max_time_us: f64,
    /// Aggregate throughput in transactions per simulated ms.
    pub throughput_per_ms: f64,
    /// Slowdown of the mean tenant vs. the solo run.
    pub slowdown: f64,
}

/// Borrower nodes used, in activation order (spread across the mesh).
const TENANTS: [u16; 8] = [1, 6, 11, 16, 4, 13, 7, 10];

fn run_tenants(count: usize, accesses_per_thread: u64) -> (f64, f64, f64) {
    let mut w = World::new(super::cluster());
    let mut ids: Vec<Vec<usize>> = Vec::new();
    for (i, &tn) in TENANTS.iter().take(count).enumerate() {
        let node = NodeId::new(tn);
        // Directory picks the nearest donor with free frames — the
        // production placement policy.
        let resv = w.reserve_remote(node, 8_192, None);
        let zone = (resv.prefixed_base, resv.frames * 4096);
        let mut tenant_ids = Vec::new();
        for t in 0..2u64 {
            tenant_ids.push(w.spawn_thread(
                ThreadSpec {
                    node,
                    zones: vec![zone],
                    accesses: accesses_per_thread,
                    bytes: 64,
                    write_fraction: 0.2,
                    think: SimDuration::ns(5),
                    seed: 500 + (i as u64) * 8 + t,
                },
                SimTime::ZERO,
            ));
        }
        ids.push(tenant_ids);
    }
    super::apply_parallel(&mut w);
    w.run();
    let per_tenant: Vec<f64> = ids
        .iter()
        .map(|ts| {
            ts.iter()
                .map(|&t| w.thread_elapsed(t).as_us_f64())
                .fold(0.0, f64::max)
        })
        .collect();
    let mean = per_tenant.iter().sum::<f64>() / per_tenant.len() as f64;
    let max = per_tenant.iter().copied().fold(0.0, f64::max);
    let total_txns = (count as u64 * 2 * accesses_per_thread) as f64;
    let throughput = total_txns / (max / 1_000.0);
    (mean, max, throughput)
}

/// Run the tenant sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let accesses = scale.pick(1_000u64, 10_000, 100_000);
    let (solo_mean, _, _) = run_tenants(1, accesses);
    (1..=TENANTS.len())
        .map(|count| {
            let (mean, max, thr) = run_tenants(count, accesses);
            Row {
                tenants: count,
                mean_time_us: mean,
                max_time_us: max,
                throughput_per_ms: thr,
                slowdown: mean / solo_mean,
            }
        })
        .collect()
}

/// Render the study as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "EXT-TENANTS — simultaneous borrowers, nearest-donor placement",
        &["tenants", "mean_us", "max_us", "txn_per_ms", "slowdown"],
    );
    for r in &rows {
        t.row(vec![
            r.tenants.to_string(),
            format!("{:.1}", r.mean_time_us),
            format!("{:.1}", r.max_time_us),
            format!("{:.0}", r.throughput_per_ms),
            format!("{:.2}x", r.slowdown),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_scale_nearly_independently() {
        let rows = run(Scale::Smoke);
        let solo = &rows[0];
        let full = rows.last().unwrap();
        // Mean tenant slows by well under 50% even with 8 tenants.
        assert!(
            full.slowdown < 1.5,
            "8-tenant mean slowdown {} too high for independent regions",
            full.slowdown
        );
        // Aggregate throughput grows substantially (>4x for 8 tenants).
        assert!(
            full.throughput_per_ms > 4.0 * solo.throughput_per_ms,
            "aggregate throughput {} vs solo {}",
            full.throughput_per_ms,
            solo.throughput_per_ms
        );
        // Monotone non-decreasing aggregate throughput.
        for w in rows.windows(2) {
            assert!(
                w[1].throughput_per_ms > w[0].throughput_per_ms * 0.9,
                "throughput regressed: {:?}",
                w.iter().map(|r| r.throughput_per_ms).collect::<Vec<_>>()
            );
        }
    }
}
