//! Figure 10 — B-tree search scalability: remote memory vs. remote swap.
//!
//! With the fanout fixed at Fig. 9's optimum (168 children), the key count
//! sweeps upward while the swap scenario's local memory stays fixed. The
//! paper's result: remote memory grows gently (locality-insensitive,
//! Eq. 2), while remote swap "worsens exponentially, due to the page
//! trashing syndrome" once the tree outgrows the resident set.

use crate::table::Table;
use crate::Scale;
use cohfree_core::backend::{AllocPolicy, RemoteMemorySpace, RemoteOptions, SwapConfig, SwapSpace};
use cohfree_core::{MemSpace, Rng};
use cohfree_workloads::BTree;

/// Children per node (Fig. 9's optimum).
pub const CHILDREN: usize = 168;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Keys in the tree.
    pub keys: usize,
    /// Mean search time, remote memory, microseconds.
    pub remote_mem_us: f64,
    /// Mean search time, remote swap, microseconds.
    pub remote_swap_us: f64,
    /// Swap major faults per search.
    pub swap_faults_per_search: f64,
}

fn searches_for(scale: Scale) -> u64 {
    scale.pick(200, 1_500, 500_000)
}

/// Swap resident set (pages), fixed across the sweep so bigger trees
/// eventually outgrow it — the essence of the figure.
fn swap_cache_pages(scale: Scale) -> usize {
    // Sized to hold the sweep's smallest tree comfortably.
    scale.pick(400, 800, 30_000)
}

fn mean_search_us<M: MemSpace>(mut m: M, keys: &[u64], searches: u64, seed: u64) -> (f64, f64) {
    let tree = BTree::bulk_load(&mut m, keys, CHILDREN - 1);
    let mut rng = Rng::new(seed);
    let f0 = m.stats().major_faults;
    let t0 = m.now();
    for i in 0..searches {
        let k = if i % 2 == 0 {
            keys[rng.below(keys.len() as u64) as usize]
        } else {
            rng.next_u64()
        };
        tree.search(&mut m, k);
    }
    let us = m.now().since(t0).as_us_f64() / searches as f64;
    let fps = (m.stats().major_faults - f0) as f64 / searches as f64;
    (us, fps)
}

/// Key counts swept.
pub fn key_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![60_000, 120_000, 240_000],
        Scale::Default => vec![100_000, 200_000, 400_000, 800_000, 1_600_000],
        Scale::Paper => vec![
            1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000, 64_000_000,
        ],
    }
}

/// Run one point of the sweep.
pub fn run_point(scale: Scale, nkeys: usize) -> Row {
    let searches = searches_for(scale);
    let keys = super::random_sorted_keys(nkeys, 0x1010 + nkeys as u64);
    let remote = RemoteMemorySpace::with_options(
        super::cluster(),
        super::n(1),
        AllocPolicy::AlwaysRemote,
        RemoteOptions {
            servers: Some(vec![super::n(2), super::n(5)]),
            ..RemoteOptions::default()
        },
    );
    let (remote_mem_us, _) = mean_search_us(remote, &keys, searches, 0xAB);
    let swap = SwapSpace::remote(
        super::cluster(),
        super::n(1),
        SwapConfig {
            cache_pages: swap_cache_pages(scale),
            ..SwapConfig::default()
        },
    );
    let (remote_swap_us, swap_faults_per_search) = mean_search_us(swap, &keys, searches, 0xAB);
    Row {
        keys: nkeys,
        remote_mem_us,
        remote_swap_us,
        swap_faults_per_search,
    }
}

/// Run the full figure (one thread per key count).
pub fn run(scale: Scale) -> Vec<Row> {
    crate::parallel_map(key_sweep(scale), |k| run_point(scale, k))
}

/// Render the figure as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "Fig. 10 — search time vs. #keys (fanout 168): remote memory vs. remote swap",
        &[
            "keys",
            "remote_mem_us",
            "remote_swap_us",
            "swap_faults_per_search",
            "swap_vs_mem",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.keys.to_string(),
            format!("{:.2}", r.remote_mem_us),
            format!("{:.2}", r.remote_swap_us),
            format!("{:.2}", r.swap_faults_per_search),
            format!("{:.1}x", r.remote_swap_us / r.remote_mem_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_explodes_past_residency_while_remote_memory_stays_gentle() {
        let rows = run(Scale::Smoke);
        let first = rows.first().unwrap();
        let mid = &rows[rows.len() / 2];
        let last = rows.last().unwrap();
        // Remote memory: gentle growth (log-depth) once the tree no longer
        // fits the CPU cache (mid -> last doubles the keys).
        assert!(
            last.remote_mem_us < mid.remote_mem_us * 3.0,
            "remote memory should grow gently: {} -> {}",
            mid.remote_mem_us,
            last.remote_mem_us
        );
        // Remote swap: blows past remote memory once the tree outgrows the
        // resident set.
        assert!(
            last.remote_swap_us > last.remote_mem_us * 3.0,
            "swap {} should dwarf remote memory {} at the top of the sweep",
            last.remote_swap_us,
            last.remote_mem_us
        );
        // And the blow-up is mechanistically a fault explosion.
        assert!(last.swap_faults_per_search > first.swap_faults_per_search + 0.5);
        // At the small end the tree is resident: swap is far below its own
        // thrashing regime.
        assert!(
            first.remote_swap_us < last.remote_swap_us / 10.0,
            "resident tree: swap {} vs thrashing swap {}",
            first.remote_swap_us,
            last.remote_swap_us
        );
    }
}
