//! Figure 11 — PARSEC-class applications on local memory, remote memory
//! and remote swap.
//!
//! Paper's findings, all reproduced by kernels in the same locality and
//! footprint classes:
//!
//! * *blackscholes*, *raytrace*: remote memory close to local; remote swap
//!   roughly **2×** worse than the prototype;
//! * *canneal*: huge footprint + random pointer chasing — remote swap
//!   degrades to prohibitive levels, remote memory clearly slower than
//!   local but feasible;
//! * *streamcluster*: working set fits local memory — all three tie.

use crate::table::Table;
use crate::Scale;
use cohfree_core::backend::{AllocPolicy, RemoteMemorySpace, RemoteOptions, SwapConfig, SwapSpace};
use cohfree_core::{LocalMachine, MemSpace};
use cohfree_workloads::parsec::{BlackScholes, Canneal, RayTrace, StreamCluster};
use cohfree_workloads::Report;

/// One kernel's three-backend measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Data footprint in MiB.
    pub footprint_mib: f64,
    /// Execution time on the local-memory machine (ms).
    pub local_ms: f64,
    /// Execution time on the paper's remote memory (ms).
    pub remote_mem_ms: f64,
    /// Execution time under remote swap (ms).
    pub remote_swap_ms: f64,
}

/// Per-scale kernel parameters. The swap resident set is fixed at
/// `cache_pages`, chosen so blackscholes/raytrace moderately exceed it,
/// canneal vastly exceeds it, and streamcluster fits.
pub struct Setup {
    /// Swap resident-set bound in pages.
    pub cache_pages: usize,
    /// The blackscholes kernel.
    pub bs: BlackScholes,
    /// The raytrace kernel.
    pub rt: RayTrace,
    /// The canneal kernel.
    pub cn: Canneal,
    /// The streamcluster kernel.
    pub sc: StreamCluster,
}

/// Build the per-tier setup.
pub fn setup(scale: Scale) -> Setup {
    match scale {
        Scale::Smoke => Setup {
            cache_pages: 256, // 1 MiB resident
            bs: BlackScholes {
                options: 40_000,
                passes: 1,
                seed: 5,
            }, // 2.2 MiB
            rt: RayTrace {
                extent: 12,
                spheres: 12_000,
                rays: 1_500,
                cell_capacity: 8,
                seed: 6,
            },
            cn: Canneal {
                elements: 200_000,
                steps: 2_500,
                temperature: 100.0,
                seed: 7,
            }, // 9.6 MiB
            sc: StreamCluster {
                block_points: 512,
                dims: 8,
                centers: 4,
                blocks: 12,
                seed: 8,
            },
        },
        Scale::Default => Setup {
            cache_pages: 2_048, // 8 MiB resident
            bs: BlackScholes {
                options: 300_000,
                passes: 2,
                seed: 5,
            }, // 16.8 MiB
            rt: RayTrace {
                extent: 40,
                spheres: 120_000,
                rays: 12_000,
                cell_capacity: 8,
                seed: 6,
            },
            cn: Canneal {
                elements: 1_500_000,
                steps: 15_000,
                temperature: 100.0,
                seed: 7,
            }, // 72 MiB
            sc: StreamCluster {
                block_points: 2_048,
                dims: 16,
                centers: 8,
                blocks: 8,
                seed: 8,
            },
        },
        Scale::Paper => Setup {
            cache_pages: 16_384, // 64 MiB resident
            bs: BlackScholes {
                options: 2_500_000,
                passes: 4,
                seed: 5,
            },
            rt: RayTrace {
                extent: 64,
                spheres: 1_000_000,
                rays: 100_000,
                cell_capacity: 8,
                seed: 6,
            },
            cn: Canneal {
                elements: 10_000_000,
                steps: 120_000,
                temperature: 100.0,
                seed: 7,
            },
            sc: StreamCluster {
                block_points: 8_192,
                dims: 32,
                centers: 16,
                blocks: 16,
                seed: 8,
            },
        },
    }
}

fn backends(cache_pages: usize) -> (LocalMachine, RemoteMemorySpace, SwapSpace) {
    let cfg = super::cluster();
    (
        LocalMachine::new(cfg, 128 << 30),
        RemoteMemorySpace::with_options(
            cfg,
            super::n(1),
            AllocPolicy::AlwaysRemote,
            RemoteOptions {
                servers: Some(vec![super::n(2), super::n(5), super::n(7), super::n(10)]),
                ..RemoteOptions::default()
            },
        ),
        SwapSpace::remote(
            cfg,
            super::n(1),
            SwapConfig {
                cache_pages,
                ..SwapConfig::default()
            },
        ),
    )
}

fn triple<F>(name: &'static str, footprint: u64, cache_pages: usize, mut go: F) -> Row
where
    F: FnMut(&mut dyn MemSpace) -> Report,
{
    let (mut local, mut remote, mut swap) = backends(cache_pages);
    let local_ms = go(&mut local).elapsed_ms();
    let remote_mem_ms = go(&mut remote).elapsed_ms();
    let remote_swap_ms = go(&mut swap).elapsed_ms();
    Row {
        kernel: name,
        footprint_mib: footprint as f64 / (1 << 20) as f64,
        local_ms,
        remote_mem_ms,
        remote_swap_ms,
    }
}

/// Run the full figure.
pub fn run(scale: Scale) -> Vec<Row> {
    let s = setup(scale);
    vec![
        triple("blackscholes", s.bs.footprint(), s.cache_pages, |m| {
            s.bs.run(m).0
        }),
        triple("raytrace", s.rt.footprint(), s.cache_pages, |m| {
            s.rt.run(m).0
        }),
        triple("canneal", s.cn.footprint(), s.cache_pages, |m| {
            s.cn.run(m).0
        }),
        triple("streamcluster", s.sc.footprint(), s.cache_pages, |m| {
            s.sc.run(m).0
        }),
    ]
}

/// Render the figure as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "Fig. 11 — PARSEC-class kernels: local vs. remote memory vs. remote swap",
        &[
            "kernel",
            "footprint_mib",
            "local_ms",
            "remote_mem_ms",
            "remote_swap_ms",
            "swap_vs_remote",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.kernel.into(),
            format!("{:.1}", r.footprint_mib),
            format!("{:.2}", r.local_ms),
            format!("{:.2}", r.remote_mem_ms),
            format!("{:.2}", r.remote_swap_ms),
            format!("{:.1}x", r.remote_swap_ms / r.remote_mem_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_shape() {
        let rows = run(Scale::Smoke);
        let get = |k: &str| rows.iter().find(|r| r.kernel == k).unwrap().clone();
        let bs = get("blackscholes");
        let cn = get("canneal");
        let sc = get("streamcluster");

        // blackscholes: swap noticeably worse than remote memory.
        assert!(
            bs.remote_swap_ms > 1.3 * bs.remote_mem_ms,
            "blackscholes: swap {} vs remote {}",
            bs.remote_swap_ms,
            bs.remote_mem_ms
        );
        // canneal: swap catastrophically worse; remote memory feasible.
        assert!(
            cn.remote_swap_ms > 5.0 * cn.remote_mem_ms,
            "canneal: swap {} vs remote {}",
            cn.remote_swap_ms,
            cn.remote_mem_ms
        );
        assert!(
            cn.remote_mem_ms > cn.local_ms,
            "canneal remote memory slower than local, but it runs"
        );
        // streamcluster: fits local memory -> all three within ~15%.
        let max = sc.local_ms.max(sc.remote_mem_ms).max(sc.remote_swap_ms);
        let min = sc.local_ms.min(sc.remote_mem_ms).min(sc.remote_swap_ms);
        assert!(max / min < 1.6, "streamcluster spread {min}..{max}");
        // Local is never slower than remote memory.
        for r in &rows {
            assert!(
                r.local_ms <= r.remote_mem_ms * 1.05,
                "{}: local {} vs remote {}",
                r.kernel,
                r.local_ms,
                r.remote_mem_ms
            );
        }
    }
}
