//! EXT-FAILOVER — throughput timeline across a mid-run donor crash.
//!
//! Beyond the paper: Section V defers "concerns related to communication
//! reliability", but a heap spanning borrowed memory makes a donor-node
//! crash a first-class failure mode. This experiment crashes the donor
//! while two client threads hammer its zone and measures the full
//! detect-evacuate-resume cycle:
//!
//! * **pre_tput_per_us** — client throughput before the crash,
//! * **mttr_us** — time from the crash until the first post-crash
//!   completion (detection via the retry budget + evacuation + re-issue),
//! * **post_tput_per_us** — throughput on the zone's new home,
//! * **failed** — accesses lost (only when no spare donor exists).
//!
//! The retry-budget sweep shows the paper-style tradeoff: a small budget
//! detects fast (low MTTR) but risks false positives on a merely lossy
//! fabric; a large budget is safe but slow to give up.

use crate::table::Table;
use crate::Scale;
use cohfree_core::{ClusterConfig, FaultEvent, FaultPlan, SimDuration, SimTime, ThreadSpec, World};

/// Zone size (frames) borrowed from the doomed donor.
const ZONE_FRAMES: u64 = 2_048;

fn base_cfg(budget: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::prototype();
    cfg.fabric.loss_rate = 1e-3; // detection must work *through* loss
    cfg.recovery.max_retries = budget;
    cfg
}

fn spawn_pair(w: &mut World, zone: (u64, u64), accesses: u64) -> Vec<usize> {
    (0..2u64)
        .map(|k| {
            w.spawn_thread(
                ThreadSpec {
                    node: super::n(1),
                    zones: vec![zone],
                    accesses: accesses / 2,
                    bytes: 64,
                    write_fraction: 0.1,
                    think: SimDuration::ns(5),
                    seed: 7_000 + k,
                },
                SimTime::ZERO,
            )
        })
        .collect()
}

/// Clean-run elapsed time (same loss, no faults), used to place the crash
/// at ~40% of the run so both phases have a measurable throughput.
fn calibrate(accesses: u64) -> SimDuration {
    let mut w = World::new(base_cfg(16));
    let resv = w.reserve_remote(super::n(1), ZONE_FRAMES, Some(super::n(2)));
    let ids = spawn_pair(&mut w, (resv.prefixed_base, resv.frames * 4096), accesses);
    super::apply_parallel(&mut w);
    w.run();
    ids.iter().map(|&i| w.thread_elapsed(i)).max().unwrap()
}

struct Outcome {
    budget: u32,
    spare: bool,
    pre_tput: f64,
    mttr_us: Option<f64>,
    post_tput: Option<f64>,
    evacuations: u64,
    completed: u64,
    failed: u64,
}

fn run_one(
    scale: Scale,
    budget: u32,
    spare: bool,
    crash_at: SimTime,
    accesses: u64,
    record: bool,
) -> Outcome {
    let mut cfg = base_cfg(budget);
    cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
        at: crash_at,
        node: super::n(2),
    });
    let mut w = World::new(cfg);
    if !spare {
        // Drain every other node's pool so the evacuation has nowhere to go.
        for i in 1..=16u16 {
            if i != 2 {
                w.directory_mut().set_free(super::n(i), 0);
            }
        }
    }
    let resv = w.reserve_remote(super::n(1), ZONE_FRAMES, Some(super::n(2)));
    w.enable_sampling(super::sample_interval(scale));
    let ids = spawn_pair(&mut w, (resv.prefixed_base, resv.frames * 4096), accesses);
    super::apply_parallel(&mut w);
    w.run();

    // Reconstruct the throughput timeline from the sampling probe's
    // cumulative node-1 completion counts.
    let samples = w.samples();
    let comp = |i: usize| samples[i].completions[0];
    let crash_i = samples
        .iter()
        .position(|s| s.at >= crash_at)
        .unwrap_or(samples.len() - 1);
    let t_crash = samples[crash_i].at.since(SimTime::ZERO).as_ns_f64() / 1_000.0;
    let pre_tput = if t_crash > 0.0 {
        comp(crash_i) as f64 / t_crash
    } else {
        0.0
    };
    let rec_i = (crash_i + 1..samples.len()).find(|&i| comp(i) > comp(crash_i));
    let mttr_us = rec_i.map(|i| samples[i].at.since(SimTime::ZERO).as_ns_f64() / 1_000.0 - t_crash);
    // Post-recovery throughput up to the last sample that saw progress
    // (the queue keeps draining stale backoff timers after the last
    // completion; those idle samples must not dilute the rate).
    let post_tput = rec_i.and_then(|ri| {
        let last_inc = (ri..samples.len()).rev().find(|&i| comp(i) > comp(i - 1))?;
        let dt = samples[last_inc].at.since(samples[ri].at).as_ns_f64() / 1_000.0;
        (dt > 0.0).then(|| (comp(last_inc) - comp(ri)) as f64 / dt)
    });

    if record {
        crate::report::record_snapshot(&format!("ext_failover/budget{budget}"), w.snapshot());
        crate::report::record_slo(&format!("ext_failover/budget{budget}"), &w);
    }
    Outcome {
        budget,
        spare,
        pre_tput,
        mttr_us,
        post_tput,
        evacuations: w.evacuations(),
        completed: ids.iter().map(|&i| w.thread_completed(i)).sum(),
        failed: ids.iter().map(|&i| w.thread_failed(i)).sum(),
    }
}

/// Build the EXT-FAILOVER table: retry-budget sweep with a spare donor,
/// plus a no-spare-capacity row where the zone is simply lost.
pub fn table(scale: Scale) -> Table {
    let accesses = scale.pick(2_000u64, 20_000, 100_000);
    let clean = calibrate(accesses);
    let crash_at = SimTime::ZERO + SimDuration::ns(clean.as_ns() * 2 / 5);
    let runs: Vec<(u32, bool)> = vec![(2, true), (4, true), (8, true), (4, false)];
    let outcomes = crate::parallel_map(runs, |(budget, spare)| {
        run_one(
            scale,
            budget,
            spare,
            crash_at,
            accesses,
            budget == 4 && spare,
        )
    });
    let mut t = Table::new(
        "EXT-FAILOVER — mid-run donor crash: detection, evacuation, MTTR",
        &[
            "retry_budget",
            "spare_donor",
            "crash_at_us",
            "pre_tput_per_us",
            "mttr_us",
            "post_tput_per_us",
            "evacuations",
            "completed",
            "failed",
        ],
    );
    let crash_us = crash_at.since(SimTime::ZERO).as_ns_f64() / 1_000.0;
    for o in outcomes {
        t.row(vec![
            o.budget.to_string(),
            if o.spare { "yes" } else { "no" }.to_string(),
            format!("{crash_us:.1}"),
            format!("{:.3}", o.pre_tput),
            o.mttr_us.map_or("-".to_string(), |m| format!("{m:.1}")),
            o.post_tput.map_or("-".to_string(), |p| format!("{p:.3}")),
            o.evacuations.to_string(),
            o.completed.to_string(),
            o.failed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_recovers_when_a_spare_donor_exists() {
        let t = table(Scale::Smoke);
        for r in &t.rows()[0..3] {
            assert!(
                r[6].parse::<u64>().unwrap() >= 1,
                "the zone must be evacuated (budget {})",
                r[0]
            );
            assert_eq!(
                r[8].parse::<u64>().unwrap(),
                0,
                "with a spare donor no access is lost (budget {})",
                r[0]
            );
            let pre: f64 = r[3].parse().unwrap();
            let post: f64 = r[5].parse().unwrap();
            assert!(
                post >= pre / 2.0,
                "post-recovery throughput {post} must be within 2x of pre-fault {pre}"
            );
        }
        // A larger retry budget detects the failure later.
        let m2: f64 = t.rows()[0][4].parse().unwrap();
        let m8: f64 = t.rows()[2][4].parse().unwrap();
        assert!(m8 > m2, "MTTR must grow with the budget: {m2} vs {m8}");
        // Without spare capacity the zone is lost and its accesses fail.
        let last = &t.rows()[3];
        assert_eq!(last[6].parse::<u64>().unwrap(), 0, "nowhere to evacuate");
        assert!(
            last[8].parse::<u64>().unwrap() > 0,
            "dropped-zone accesses must be recorded as failed"
        );
    }
}
