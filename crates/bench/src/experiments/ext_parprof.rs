//! EXT-PARPROF — where does the parallel engine's wall clock go?
//!
//! The conservative parallel engine is output-invariant, so the *only*
//! question a tuning knob answers is "how much wall clock does it buy".
//! This study turns the engine's own self-profiling registry
//! ([`cohfree_sim::metrics`]) on, sweeps partition count × epoch factor ×
//! shard placement over the perf harness's 256-node big world, and prints
//! an attribution table: what share of the coordinator's wall clock went
//! to executing windows inline, stalling on workers, merging shards back,
//! and handing work off — plus the achieved speedup against the ideal
//! (the partition count).
//!
//! Shares come from the `cohfree_par_coord_ns{bucket=...}` counters the
//! engine flushes after every parallel run. Their sum *is* the engine's
//! total wall clock by construction (the `other` bucket is the remainder),
//! and the `coverage` column cross-checks that total against an external
//! timer around `World::run` — it must stay ≥95%, i.e. the attribution
//! explains essentially all of the measured wall time.
//!
//! Everything in this table is wall-clock and therefore host-dependent and
//! nondeterministic; none of it lands in the `COHFREE_JSON` metrics
//! section (which carries only deterministic SLO accounting). Run with
//! `COHFREE_METRICS=<path>` to also export the final sweep point's raw
//! registry as Prometheus text.

use crate::table::Table;
use crate::Scale;
use cohfree_sim::metrics;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Partition count handed to [`cohfree_core::World::set_parallel`].
    pub parts: usize,
    /// Epoch factor (`COHFREE_PAR_EPOCH`).
    pub epoch: u64,
    /// Shard placement (`COHFREE_PAR_PLACEMENT`).
    pub placement: &'static str,
    /// Measured wall time around `World::run`, in milliseconds.
    pub wall_ms: f64,
    /// Sequential wall time / this row's wall time.
    pub speedup: f64,
    /// Coordinator share spent executing windows inline.
    pub exec_share: f64,
    /// Coordinator share spent waiting on worker results.
    pub stall_share: f64,
    /// Coordinator share spent merging shards and applying global events.
    pub merge_share: f64,
    /// Coordinator share spent dispatching shards and routing outboxes.
    pub handoff_share: f64,
    /// Unattributed remainder share.
    pub other_share: f64,
    /// Attributed engine total / externally measured wall time.
    pub coverage: f64,
    /// Cause-attributed shard merges (fault + suspect + manager).
    pub merges: u64,
    /// Coordinator rounds.
    pub rounds: u64,
}

/// The coordinator buckets, in presentation order. `other` is derived as
/// the remainder at flush time, so the five sum to the engine total.
const BUCKETS: [&str; 5] = ["execute", "stall", "merge", "handoff", "other"];

fn coord_ns(snap: &metrics::Snapshot, bucket: &str) -> u64 {
    snap.counter(&format!("cohfree_par_coord_ns{{bucket=\"{bucket}\"}}"))
}

/// Time one run of the big world at `parts` partitions; returns
/// `(wall_secs, registry snapshot)`. The registry is reset first so each
/// sweep point reads only its own run.
fn timed_run(accesses: u64, parts: usize) -> (f64, metrics::Snapshot) {
    metrics::reset();
    let mut w = crate::perf::big_world_with(accesses);
    w.set_parallel(parts);
    let t0 = std::time::Instant::now();
    w.run();
    (t0.elapsed().as_secs_f64(), metrics::snapshot())
}

/// Run the sweep. The runs go one at a time — wall-clock attribution and a
/// process-global registry both forbid overlapping them on the worker
/// pool. Leaves the registry holding the final sweep point's data (so a
/// `COHFREE_METRICS` export carries a real run) and restores the metrics
/// tier it found.
pub fn run(scale: Scale) -> Vec<Row> {
    let accesses = scale.pick(40u64, 625, 2_500);
    let parts_sweep: &[usize] = scale.pick(&[2, 8][..], &[2, 4, 8][..], &[2, 4, 8][..]);
    let epochs: &[u64] = scale.pick(&[64][..], &[16, 64, 256][..], &[16, 64, 256][..]);
    let placements: &[&str] = scale.pick(
        &["proximity"][..],
        &["proximity", "contiguous"][..],
        &["proximity", "contiguous"][..],
    );

    let was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    // Sequential reference for the speedup column (engine-profiled too,
    // but only the wall matters here).
    let (seq_secs, _) = timed_run(accesses, 1);

    let mut rows = Vec::new();
    for &placement in placements {
        for &epoch in epochs {
            std::env::set_var("COHFREE_PAR_EPOCH", epoch.to_string());
            std::env::set_var("COHFREE_PAR_PLACEMENT", placement);
            for &parts in parts_sweep {
                let (secs, snap) = timed_run(accesses, parts);
                let by_bucket: Vec<u64> = BUCKETS.iter().map(|b| coord_ns(&snap, b)).collect();
                let total: u64 = by_bucket.iter().sum();
                let share = |i: usize| {
                    if total == 0 {
                        0.0
                    } else {
                        by_bucket[i] as f64 / total as f64
                    }
                };
                rows.push(Row {
                    parts,
                    epoch,
                    placement,
                    wall_ms: secs * 1e3,
                    speedup: seq_secs / secs.max(1e-9),
                    exec_share: share(0),
                    stall_share: share(1),
                    merge_share: share(2),
                    handoff_share: share(3),
                    other_share: share(4),
                    coverage: total as f64 / (secs * 1e9).max(1.0),
                    merges: snap.counter_sum("cohfree_par_merges_total"),
                    rounds: snap.counter("cohfree_par_rounds_total"),
                });
            }
            std::env::remove_var("COHFREE_PAR_EPOCH");
            std::env::remove_var("COHFREE_PAR_PLACEMENT");
        }
    }
    metrics::set_enabled(was_enabled);
    rows
}

/// Render the study as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "EXT-PARPROF — parallel-engine wall-clock attribution (big world)",
        &[
            "parts",
            "epoch",
            "placement",
            "wall_ms",
            "speedup",
            "ideal",
            "exec%",
            "stall%",
            "merge%",
            "handoff%",
            "other%",
            "coverage%",
            "merges",
            "rounds",
        ],
    );
    let pct = |s: f64| format!("{:.1}", s * 100.0);
    for r in &rows {
        t.row(vec![
            r.parts.to_string(),
            r.epoch.to_string(),
            r.placement.into(),
            format!("{:.1}", r.wall_ms),
            format!("{:.2}x", r.speedup),
            format!("{:.2}x", r.parts as f64),
            pct(r.exec_share),
            pct(r.stall_share),
            pct(r.merge_share),
            pct(r.handoff_share),
            pct(r.other_share),
            pct(r.coverage),
            r.merges.to_string(),
            r.rounds.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_covers_the_measured_wall_clock() {
        let rows = run(Scale::Smoke);
        assert_eq!(rows.len(), 2, "smoke sweeps parts 2 and 8");
        for r in &rows {
            // The five buckets are exhaustive by construction...
            let sum =
                r.exec_share + r.stall_share + r.merge_share + r.handoff_share + r.other_share;
            assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum} ({r:?})");
            // ...and their total must explain the externally timed wall
            // clock. 95% is the acceptance bar; the engine prologue is the
            // only code outside the attributed span.
            assert!(
                r.coverage >= 0.95,
                "attribution covers only {:.1}% of wall ({r:?})",
                r.coverage * 100.0
            );
            assert!(r.rounds > 0, "coordinator rounds must be counted ({r:?})");
            assert!(r.wall_ms > 0.0 && r.speedup > 0.0);
        }
    }
}
