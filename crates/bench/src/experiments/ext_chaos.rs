//! EXT-CHAOS — what the online recovery manager buys under fault churn.
//!
//! Beyond the paper: EXT-FAILOVER measures one donor crash with static,
//! retry-budget-driven recovery. This experiment puts the same workload
//! (two node-1 threads hammering a zone borrowed from node 2) under three
//! chaos disruptions — a crash storm, a correlated link partition that
//! isolates the donor, and rolling server stalls — and compares **manager
//! off** (static worst-case provisioning: failures are found the slow way,
//! by exhausting the per-access retry budget) against **manager on** (the
//! [`cohfree_core::ManagerConfig`] control loop: periodic observation,
//! proactive migration, admission control). Metrics:
//!
//! * **availability** — fraction of sample intervals (between the first
//!   and last interval that made progress) in which node 1 completed at
//!   least one access,
//! * **mttr_us** — time from the disruption striking until node-1
//!   completions resume,
//! * **shed_deferrals** — accesses turned away (and later re-admitted) by
//!   admission control,
//! * **completed / failed / evacuations** — end-state accounting.
//!
//! The manager's tick (2 us) plus one re-reservation (~200 us) beats the
//! retry-budget detection path (16 exponentially backed-off retries, ~6 ms)
//! by more than an order of magnitude, which shows up directly in both
//! availability and MTTR.

use crate::table::Table;
use crate::Scale;
use cohfree_core::{
    ClusterConfig, FaultEvent, FaultPlan, ManagerConfig, SimDuration, SimTime, ThreadSpec, World,
};

/// Zone size (frames) borrowed from the disrupted donor.
const ZONE_FRAMES: u64 = 2_048;

/// The disruption hitting the donor (node 2) mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disruption {
    /// The donor crashes, with two more crashes elsewhere for storm flavor.
    CrashStorm,
    /// Every link of the donor goes down at once (correlated outage): the
    /// node is alive but unreachable.
    Partition,
    /// The donor's server RMC stalls repeatedly; nothing ever dies.
    RollingStalls,
}

impl Disruption {
    /// All disruptions, in table order.
    pub const ALL: [Disruption; 3] = [
        Disruption::CrashStorm,
        Disruption::Partition,
        Disruption::RollingStalls,
    ];

    /// Stable row label.
    pub fn name(self) -> &'static str {
        match self {
            Disruption::CrashStorm => "crash_storm",
            Disruption::Partition => "partition",
            Disruption::RollingStalls => "rolling_stalls",
        }
    }
}

fn plan(cfg: &ClusterConfig, disruption: Disruption, strike: SimTime) -> FaultPlan {
    let us = |d: SimDuration| strike + d;
    match disruption {
        Disruption::CrashStorm => FaultPlan::new()
            .with(FaultEvent::NodeCrash {
                at: strike,
                node: super::n(2),
            })
            .with(FaultEvent::NodeCrash {
                at: us(SimDuration::us(30)),
                node: super::n(11),
            })
            .with(FaultEvent::NodeCrash {
                at: us(SimDuration::us(55)),
                node: super::n(14),
            }),
        Disruption::Partition => {
            let mut p = FaultPlan::new();
            for (a, b) in crate::chaos::links_of(cfg, super::n(2)) {
                p.push(FaultEvent::LinkDown { at: strike, a, b });
            }
            p
        }
        Disruption::RollingStalls => FaultPlan::new()
            .with(FaultEvent::ServerStall {
                at: strike,
                node: super::n(2),
                duration: SimDuration::us(60),
            })
            .with(FaultEvent::ServerStall {
                at: us(SimDuration::us(90)),
                node: super::n(2),
                duration: SimDuration::us(60),
            }),
    }
}

/// One measured run.
pub struct Outcome {
    /// Row label.
    pub disruption: Disruption,
    /// Manager on?
    pub manager: bool,
    /// Fraction of progress-window sample intervals with >= 1 completion.
    pub availability: f64,
    /// Strike-to-resume latency (None if progress never resumed).
    pub mttr_us: Option<f64>,
    /// Accesses deferred by admission control.
    pub shed_deferrals: u64,
    /// Completed / failed accesses and zone moves.
    pub completed: u64,
    /// Accesses lost.
    pub failed: u64,
    /// Evacuations + proactive migrations.
    pub evacuations: u64,
}

fn run_one(
    scale: Scale,
    disruption: Disruption,
    manager: bool,
    strike: SimTime,
    accesses: u64,
    record: bool,
) -> Outcome {
    let mut cfg = ClusterConfig::prototype();
    cfg.faults = plan(&cfg, disruption, strike);
    if manager {
        cfg.manager = ManagerConfig::enabled();
    }
    let mut w = World::new(cfg);
    let resv = w.reserve_remote(super::n(1), ZONE_FRAMES, Some(super::n(2)));
    // For the stall rows, a second zone on a healthy donor keeps threads
    // issuing during the stall so admission control actually has traffic to
    // defer; for crash/partition rows a single zone keeps the recovery
    // signal clean (all node-1 progress stops until the zone moves).
    let zones = if disruption == Disruption::RollingStalls {
        let spare = w.reserve_remote(super::n(1), ZONE_FRAMES, Some(super::n(3)));
        vec![
            (resv.prefixed_base, resv.frames * 4096),
            (spare.prefixed_base, spare.frames * 4096),
        ]
    } else {
        vec![(resv.prefixed_base, resv.frames * 4096)]
    };
    w.enable_sampling(super::sample_interval(scale).min(SimDuration::us(5)));
    let ids: Vec<usize> = (0..2u64)
        .map(|k| {
            w.spawn_thread(
                ThreadSpec {
                    node: super::n(1),
                    zones: zones.clone(),
                    accesses: accesses / 2,
                    bytes: 64,
                    write_fraction: 0.1,
                    think: SimDuration::ns(5),
                    seed: 9_100 + k,
                },
                SimTime::ZERO,
            )
        })
        .collect();
    super::apply_parallel(&mut w);
    w.run();

    let samples = w.samples();
    let comp = |i: usize| samples[i].completions[0];
    let strike_i = samples
        .iter()
        .position(|s| s.at >= strike)
        .unwrap_or(samples.len() - 1);
    let t_strike = samples[strike_i].at.since(SimTime::ZERO).as_ns_f64() / 1_000.0;
    let rec_i = (strike_i + 1..samples.len()).find(|&i| comp(i) > comp(strike_i));
    let mttr_us =
        rec_i.map(|i| samples[i].at.since(SimTime::ZERO).as_ns_f64() / 1_000.0 - t_strike);
    // Availability over the progress window: intervals from the first to
    // the last one that completed anything (the drain tail past the final
    // completion is backoff-timer housekeeping, not unavailability).
    let progressing: Vec<usize> = (1..samples.len())
        .filter(|&i| comp(i) > comp(i - 1))
        .collect();
    let availability = match (progressing.first(), progressing.last()) {
        (Some(&a), Some(&b)) if b > a => progressing.len() as f64 / (b - a + 1) as f64,
        _ => 0.0,
    };
    if record {
        crate::report::record_snapshot(
            &format!("ext_chaos/{}_manager", disruption.name()),
            w.snapshot(),
        );
    }
    Outcome {
        disruption,
        manager,
        availability,
        mttr_us,
        shed_deferrals: (1..=16)
            .map(|i| w.client(super::n(i)).shed_deferrals())
            .sum(),
        completed: ids.iter().map(|&i| w.thread_completed(i)).sum(),
        failed: ids.iter().map(|&i| w.thread_failed(i)).sum(),
        evacuations: w.evacuations(),
    }
}

/// Run the full EXT-CHAOS grid (3 disruptions × manager off/on).
pub fn outcomes(scale: Scale) -> Vec<Outcome> {
    let accesses = scale.pick(4_000u64, 20_000, 100_000);
    // Strike while the workload is hot: past warmup, well before the end
    // (a clean smoke run of 4k accesses lasts ~2.7 ms).
    let strike = SimTime::ZERO + SimDuration::us(100);
    let grid: Vec<(Disruption, bool)> = Disruption::ALL
        .iter()
        .flat_map(|&d| [(d, false), (d, true)])
        .collect();
    crate::parallel_map(grid, |(d, m)| {
        run_one(
            scale,
            d,
            m,
            strike,
            accesses,
            m && d == Disruption::CrashStorm,
        )
    })
}

/// Build the EXT-CHAOS table.
pub fn table(scale: Scale) -> Table {
    let mut t = Table::new(
        "EXT-CHAOS — recovery manager vs static provisioning under fault churn",
        &[
            "disruption",
            "manager",
            "availability",
            "mttr_us",
            "shed_deferrals",
            "completed",
            "failed",
            "evacuations",
        ],
    );
    for o in outcomes(scale) {
        t.row(vec![
            o.disruption.name().to_string(),
            if o.manager { "on" } else { "off" }.to_string(),
            format!("{:.3}", o.availability),
            o.mttr_us.map_or("-".to_string(), |m| format!("{m:.1}")),
            o.shed_deferrals.to_string(),
            o.completed.to_string(),
            o.failed.to_string(),
            o.evacuations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_strictly_beats_static_provisioning_on_crash_and_partition() {
        let all = outcomes(Scale::Smoke);
        for d in [Disruption::CrashStorm, Disruption::Partition] {
            let off = all
                .iter()
                .find(|o| o.disruption == d && !o.manager)
                .unwrap();
            let on = all.iter().find(|o| o.disruption == d && o.manager).unwrap();
            assert!(
                on.availability > off.availability,
                "{}: manager availability {} must strictly beat static {}",
                d.name(),
                on.availability,
                off.availability
            );
            let (m_on, m_off) = (
                on.mttr_us.expect("manager run must resume"),
                off.mttr_us.expect("static run must eventually resume"),
            );
            assert!(
                m_on < m_off,
                "{}: manager MTTR {m_on} us must strictly beat static {m_off} us",
                d.name()
            );
            assert!(
                on.evacuations >= 1,
                "{}: the zone must have been migrated",
                d.name()
            );
            assert_eq!(
                on.completed + on.failed,
                off.completed + off.failed,
                "{}: both provisioning modes account for every access",
                d.name()
            );
        }
    }

    #[test]
    fn admission_control_engages_on_rolling_stalls() {
        let all = outcomes(Scale::Smoke);
        let on = all
            .iter()
            .find(|o| o.disruption == Disruption::RollingStalls && o.manager)
            .unwrap();
        assert!(
            on.shed_deferrals > 0,
            "stalled-server accesses must be deferred by admission control"
        );
        assert_eq!(on.failed, 0, "admission control defers, never drops");
        let off = all
            .iter()
            .find(|o| o.disruption == Disruption::RollingStalls && !o.manager)
            .unwrap();
        assert_eq!(off.shed_deferrals, 0, "no manager, no shedding");
    }
}
