//! Equations 1–2 vs. full simulation.
//!
//! A locality-controlled kernel performs `A_total` single-word loads,
//! `A_page` at a time against one page before jumping to another page, with
//! every load touching a fresh cache line (so the CPU cache never absorbs
//! accesses — the equations model memory-system time, not cache reuse).
//!
//! * Remote memory runs **uncached** (the I/O-space mode), so Eq. 2's
//!   `A_total · L_remote` is the exact prediction.
//! * Remote swap uses an Ethernet transport with a 15 µs RTT — chosen so
//!   the locality crossover `A_page* = L_swap / (L_remote − L_local)` falls
//!   inside the sweepable range (a page holds 64 distinct lines).
//!
//! The simulated curves must track both closed forms and the winner must
//! flip at the predicted crossover.

use crate::table::Table;
use crate::Scale;
use cohfree_core::analytic::{
    crossover_accesses_per_page, t_remote_memory, t_remote_swap, ModelParams,
};
use cohfree_core::backend::{
    AllocPolicy, RemoteMemorySpace, RemoteOptions, SwapConfig, SwapSpace, SwapTransport,
};
use cohfree_core::world::World;
use cohfree_core::{MemSpace, SimDuration};

/// One locality point.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Accesses per page before jumping (`A_page`).
    pub accesses_per_page: u64,
    /// Simulated remote-memory time (ms).
    pub sim_remote_ms: f64,
    /// Eq. 2 prediction (ms).
    pub model_remote_ms: f64,
    /// Simulated remote-swap time (ms).
    pub sim_swap_ms: f64,
    /// Eq. 1 prediction (ms).
    pub model_swap_ms: f64,
}

/// Swap network RTT used by this experiment.
const SWAP_RTT: SimDuration = SimDuration(10_000_000); // 10 us
/// Swap network bandwidth (bytes per microsecond).
const SWAP_BW: f64 = 125.0;

/// Allocate and materialize the footprint (untimed relative to the
/// measured phase): touch every page so later faults hit the device.
fn populate<M: MemSpace + ?Sized>(mem: &mut M, pages: u64) -> u64 {
    let va = mem.alloc(pages * 4096);
    for p in 0..pages {
        mem.write_u64(va + p * 4096, p);
    }
    va
}

/// The locality kernel's measured phase: `a_page` loads per page visit,
/// each on a fresh cache line, page order strided to defeat the page cache.
fn locality_kernel<M: MemSpace + ?Sized>(
    mem: &mut M,
    va: u64,
    pages: u64,
    a_page: u64,
    total: u64,
) {
    assert!(a_page <= 64, "a page holds 64 distinct lines");
    let stride = pages / 2 + 1;
    let mut page = 0u64;
    let mut visit = 0u64;
    let mut done = 0u64;
    while done < total {
        let burst = a_page.min(total - done);
        for k in 0..burst {
            let line = (visit + k) % 64;
            mem.read_u64(va + page * 4096 + line * 64);
        }
        done += burst;
        visit += burst;
        page = (page + stride) % pages;
    }
}

/// Measured/theory comparison for one `A_page`.
pub fn run_point(scale: Scale, a_page: u64) -> Row {
    let total = scale.pick(3_000u64, 30_000, 300_000);
    let pages = scale.pick(512u64, 2_048, 16_384);
    let cache_pages = (pages / 4) as usize;

    // Simulated remote memory, uncached (Eq. 2's regime).
    let mut rm = RemoteMemorySpace::with_options(
        super::cluster(),
        super::n(1),
        AllocPolicy::AlwaysRemote,
        RemoteOptions {
            cacheable: false,
            ..RemoteOptions::default()
        },
    );
    let va = populate(&mut rm, pages);
    let t0 = rm.now();
    locality_kernel(&mut rm, va, pages, a_page, total);
    let sim_remote = rm.now().since(t0);

    // Simulated remote swap over the experiment's network.
    let mut sw = SwapSpace::remote(
        super::cluster(),
        super::n(1),
        SwapConfig {
            cache_pages,
            transport: SwapTransport::Ethernet {
                rtt: SWAP_RTT,
                bytes_per_us: SWAP_BW,
            },
            ..SwapConfig::default()
        },
    );
    let va = populate(&mut sw, pages);
    sw.flush_dirty_pages();
    let t0 = sw.now();
    locality_kernel(&mut sw, va, pages, a_page, total);
    let sim_swap = sw.now().since(t0);

    let params = model_params(total, a_page);
    Row {
        accesses_per_page: a_page,
        sim_remote_ms: sim_remote.as_ms_f64(),
        model_remote_ms: t_remote_memory(&params).as_ms_f64(),
        sim_swap_ms: sim_swap.as_ms_f64(),
        model_swap_ms: t_remote_swap(&params).as_ms_f64(),
    }
}

/// Closed-form calibration, derived from the same cluster configuration the
/// simulation uses (no independent hand-tuning).
pub fn model_params(total: u64, a_page: u64) -> ModelParams {
    let cfg = super::cluster();
    let w = World::new(cfg);
    // 8-byte uncached remote load, nearest donor = 1 hop.
    let l_remote = w.estimate_remote_read_latency(super::n(1), super::n(2), 8);
    // Resident access: cache lookup + DRAM line fill.
    let l_local = cfg.os.cache_hit + SimDuration::ns(65);
    // Page fault: kernel overhead + network RTT + page wire time.
    let l_swap = cfg.os.fault_overhead + SWAP_RTT + SimDuration::ns_f64(4096.0 / SWAP_BW * 1e3);
    ModelParams {
        total_accesses: total,
        accesses_per_page: a_page as f64,
        l_local,
        l_swap,
        l_remote,
    }
}

/// The locality sweep (≤ 64 distinct lines per page).
pub fn sweep() -> Vec<u64> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

/// Run the sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    sweep().into_iter().map(|a| run_point(scale, a)).collect()
}

/// Render as a table (plus the predicted crossover).
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "Eqs. 1-2 — analytic model vs. simulation (locality sweep)",
        &["A_page", "sim_remote_ms", "eq2_ms", "sim_swap_ms", "eq1_ms"],
    );
    for r in &rows {
        t.row(vec![
            r.accesses_per_page.to_string(),
            format!("{:.3}", r.sim_remote_ms),
            format!("{:.3}", r.model_remote_ms),
            format!("{:.3}", r.sim_swap_ms),
            format!("{:.3}", r.model_swap_ms),
        ]);
    }
    let params = model_params(1, 1);
    if let Some(x) = crossover_accesses_per_page(&params) {
        t.row(vec![
            format!("crossover≈{x:.0}"),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_tracks_the_closed_forms() {
        for a_page in [1u64, 16, 64] {
            let r = run_point(Scale::Smoke, a_page);
            let rel = (r.sim_remote_ms - r.model_remote_ms).abs() / r.model_remote_ms;
            assert!(
                rel < 0.25,
                "A_page={a_page}: remote sim {} vs eq2 {}",
                r.sim_remote_ms,
                r.model_remote_ms
            );
            let rel = (r.sim_swap_ms - r.model_swap_ms).abs() / r.model_swap_ms;
            assert!(
                rel < 0.30,
                "A_page={a_page}: swap sim {} vs eq1 {}",
                r.sim_swap_ms,
                r.model_swap_ms
            );
        }
    }

    #[test]
    fn winner_flips_at_the_crossover() {
        let lo = run_point(Scale::Smoke, 16);
        let hi = run_point(Scale::Smoke, 64);
        assert!(
            lo.sim_remote_ms < lo.sim_swap_ms,
            "poor locality: remote memory must win"
        );
        assert!(
            hi.sim_swap_ms < hi.sim_remote_ms,
            "great locality: swap must win"
        );
        let x = crossover_accesses_per_page(&model_params(1, 1)).unwrap();
        assert!(
            x > 16.0 && x < 64.0,
            "crossover {x} must sit inside the flip interval"
        );
    }
}
