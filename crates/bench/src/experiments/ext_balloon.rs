//! EXT-BALLOON — elastic hot-plug vs. worst-case provisioning.
//!
//! The paper's introduction observes that administrators "provision each of
//! the computers in the cluster for its worst-case memory usage, what
//! usually leads to memory sizes much larger than required for most
//! applications". The architecture's fix is elasticity: borrow zones when a
//! phase needs them, return them after. This study drives four tenants
//! through staggered demand waves under two provisioning policies:
//!
//! * **static** — each tenant reserves its own peak demand up front and
//!   holds it for the whole run (worst-case provisioning, moved into the
//!   pool), and
//! * **balloon** — the [`cohfree_os::balloon`] watermark policy grows and
//!   shrinks zones as demand moves.
//!
//! Both serve every byte of demand; the balloon does it with a fraction of
//! the pool held at any instant, at the cost of a handful of reservation
//! round trips (software, off the access path).

use crate::table::Table;
use crate::Scale;
use cohfree_core::world::World;
use cohfree_core::NodeId;
use cohfree_os::balloon::{Balloon, BalloonAction, BalloonConfig};
use cohfree_os::resv::Reservation;

/// One policy's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Policy label.
    pub policy: &'static str,
    /// Peak pool frames held across the cluster at any step.
    pub peak_pool_mib: f64,
    /// Mean pool frames held over the run.
    pub mean_pool_mib: f64,
    /// Reservation protocol round trips performed (grows + releases).
    pub reservation_ops: u64,
    /// Demand steps that could not be satisfied (must be zero).
    pub unmet: u64,
}

/// Tenant nodes (spread across the mesh).
const TENANTS: [u16; 4] = [1, 6, 11, 16];
/// Local frames each tenant's workload may use before borrowing.
const LOCAL_FRAMES: u64 = 40_000;
/// Zone granularity in frames.
const ZONE: u64 = 16_384;

/// Staggered bursty demand (frames used per step, per tenant): each tenant
/// idles at half its local memory except during its own burst window, when
/// demand ramps to `peak` and back — batch jobs taking turns, the scenario
/// where worst-case provisioning wastes the most.
fn demand(step: usize, tenant: usize, steps: usize, peak: u64) -> u64 {
    let window = (steps / TENANTS.len()).max(2);
    let start = tenant * window;
    if step >= start && step < start + window {
        let phase = step - start;
        let half = window / 2;
        let ramp = if phase <= half { phase } else { window - phase };
        LOCAL_FRAMES / 2 + peak * ramp as u64 / half.max(1) as u64
    } else {
        LOCAL_FRAMES / 2
    }
}

fn mib(frames: u64) -> f64 {
    (frames * 4096) as f64 / (1 << 20) as f64
}

/// Run one policy over the demand schedule.
fn run_policy(balloon_mode: bool, steps: usize, peak: u64) -> Row {
    let mut w = World::new(super::cluster());
    let mut balloons: Vec<Balloon> = TENANTS
        .iter()
        .map(|_| {
            Balloon::new(
                BalloonConfig {
                    zone_frames: ZONE,
                    ..BalloonConfig::default()
                },
                LOCAL_FRAMES,
            )
        })
        .collect();
    let mut held: Vec<Vec<Reservation>> = vec![Vec::new(); TENANTS.len()];
    let mut ops = 0u64;
    let mut unmet = 0u64;
    let mut peak_pool = 0u64;
    let mut pool_sum = 0u64;

    if !balloon_mode {
        // Static: reserve each tenant's peak borrow need up front.
        for (ti, &tn) in TENANTS.iter().enumerate() {
            let peak_demand = (0..steps)
                .map(|s| demand(s, ti, steps, peak))
                .max()
                .unwrap();
            let mut need = peak_demand.saturating_sub(LOCAL_FRAMES);
            // Round up to zones.
            need = need.div_ceil(ZONE) * ZONE;
            if need > 0 {
                held[ti].push(w.reserve_remote(NodeId::new(tn), need, None));
                ops += 1;
            }
        }
    }

    for step in 0..steps {
        for (ti, &tn) in TENANTS.iter().enumerate() {
            let used = demand(step, ti, steps, peak);
            if balloon_mode {
                loop {
                    match balloons[ti].decide(used) {
                        BalloonAction::Grow => {
                            held[ti].push(w.reserve_remote(NodeId::new(tn), ZONE, None));
                            balloons[ti].applied(BalloonAction::Grow);
                            ops += 1;
                        }
                        BalloonAction::Shrink => {
                            let r = held[ti].pop().expect("balloon zones tracked");
                            w.release_remote(NodeId::new(tn), r);
                            balloons[ti].applied(BalloonAction::Shrink);
                            ops += 1;
                        }
                        BalloonAction::Hold => break,
                    }
                }
                if balloons[ti].capacity() < used {
                    unmet += 1;
                }
            } else {
                let capacity = LOCAL_FRAMES + held[ti].iter().map(|r| r.frames).sum::<u64>();
                if capacity < used {
                    unmet += 1;
                }
            }
        }
        let pool_now: u64 = held.iter().flatten().map(|r| r.frames).sum();
        peak_pool = peak_pool.max(pool_now);
        pool_sum += pool_now;
    }
    Row {
        policy: if balloon_mode {
            "balloon"
        } else {
            "static peak"
        },
        peak_pool_mib: mib(peak_pool),
        mean_pool_mib: mib(pool_sum / steps as u64),
        reservation_ops: ops,
        unmet,
    }
}

/// Run both policies.
pub fn run(scale: Scale) -> Vec<Row> {
    let steps = scale.pick(16usize, 64, 256);
    let peak = scale.pick(100_000u64, 200_000, 400_000);
    vec![
        run_policy(false, steps, peak),
        run_policy(true, steps, peak),
    ]
}

/// Render the study as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "EXT-BALLOON — pool held: worst-case provisioning vs. hot-plug balloon",
        &[
            "policy",
            "peak_pool_mib",
            "mean_pool_mib",
            "reservation_ops",
            "unmet_steps",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.policy.into(),
            format!("{:.0}", r.peak_pool_mib),
            format!("{:.0}", r.mean_pool_mib),
            r.reservation_ops.to_string(),
            r.unmet.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balloon_serves_demand_with_less_pool() {
        let rows = run(Scale::Smoke);
        let stat = &rows[0];
        let ball = &rows[1];
        assert_eq!(stat.unmet, 0, "static must serve all demand");
        assert_eq!(ball.unmet, 0, "balloon must serve all demand");
        // Staggered peaks: the balloon holds much less pool on average…
        assert!(
            ball.mean_pool_mib < stat.mean_pool_mib * 0.6,
            "balloon mean {} vs static {}",
            ball.mean_pool_mib,
            stat.mean_pool_mib
        );
        // …and even its peak is below static's always-on reservation.
        assert!(
            ball.peak_pool_mib <= stat.peak_pool_mib * 1.01,
            "balloon peak {} vs static {}",
            ball.peak_pool_mib,
            stat.peak_pool_mib
        );
        // The cost: more (but bounded) reservation traffic.
        assert!(ball.reservation_ops > stat.reservation_ops);
        assert!(ball.reservation_ops < 1_000, "no churn explosion");
    }
}
