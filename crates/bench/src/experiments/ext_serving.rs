//! EXT-SERVING — open-loop multi-tenant serving with SLO accounting,
//! healthy vs. mid-run donor crash.
//!
//! Installs two tenants from [`cohfree_workloads::serving`] on the 16-node
//! prototype — a point-KV tenant (millions of simulated users, diurnally
//! modulated Poisson arrivals, Zipf-popular 64 B accesses over two donated
//! zones) and a columnar-scan tenant (large sequential 4 KiB remote reads)
//! — and runs the same offered load twice: once undisturbed, once with the
//! KV tenant's first donor crashing mid-run while the online recovery
//! manager is live. The table reports, per tenant and cluster-wide,
//! end-to-end (arrival→completion) p50/p99/p99.9 and window availability
//! side by side: "p99.9 during churn", the number a production operator
//! asks for.
//!
//! Both cells also land in the report's `metrics.slos` section
//! (`ext_serving/nofault`, `ext_serving/crash`) via
//! [`crate::report::record_slo`], and the crash cell records its cluster
//! snapshot. Knobs: `COHFREE_SERVING_USERS` (KV user population,
//! default 1 M), `COHFREE_SERVING_LANES` (serving threads per tenant,
//! default 4), `COHFREE_SERVING_SEED` (arrival-stream seed base).

use crate::table::Table;
use crate::Scale;
use cohfree_core::{
    envknob, FaultEvent, FaultPlan, ManagerConfig, SimDuration, SimTime, TraceConfig, World,
};
use cohfree_sim::stats::LatencyHistogram;
use cohfree_workloads::serving::{
    self, ArrivalSpec, DiurnalProfile, RequestMix, Tenant, TenantSpec,
};

/// KV-tenant simulated user population (`COHFREE_SERVING_USERS`).
fn users() -> u64 {
    envknob::lookup("COHFREE_SERVING_USERS", envknob::parse_positive)
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(1_000_000)
}

/// Serving lanes (threads) per tenant (`COHFREE_SERVING_LANES`).
fn lanes() -> usize {
    envknob::lookup("COHFREE_SERVING_LANES", envknob::parse_positive)
        .unwrap_or_else(|e| panic!("{e}"))
        .map_or(4, |l: u64| l as usize)
}

/// Arrival-stream seed base (`COHFREE_SERVING_SEED`).
fn seed() -> u64 {
    envknob::lookup("COHFREE_SERVING_SEED", envknob::parse_positive)
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(0x5E21)
}

/// The two tenants of the study. The KV tenant folds the full user
/// population into one diurnally modulated aggregate stream; the scan
/// tenant runs an eighth of the population at the same per-user rate.
fn tenants(scale: Scale) -> Vec<TenantSpec> {
    let kv_requests = scale.pick(2_000u64, 10_000, 50_000);
    vec![
        TenantSpec {
            name: "kv".into(),
            client: super::n(1),
            donors: vec![super::n(3), super::n(4)],
            frames_per_donor: 128,
            lanes: lanes(),
            requests: kv_requests,
            mix: RequestMix::PointKv {
                zipf_s: 0.99,
                value_bytes: 64,
            },
            arrivals: ArrivalSpec {
                users: users(),
                rate_per_user_hz: 2.0,
                diurnal: Some(DiurnalProfile {
                    period: SimDuration::us(400),
                    trough: 0.4,
                }),
                seed: seed(),
            },
            write_fraction: 0.1,
            think: SimDuration::ns(5),
            start: SimTime::ZERO,
        },
        TenantSpec {
            name: "scan".into(),
            client: super::n(2),
            donors: vec![super::n(5)],
            frames_per_donor: 128,
            lanes: lanes(),
            requests: kv_requests / 4,
            mix: RequestMix::ColumnarScan { chunk_bytes: 4096 },
            arrivals: ArrivalSpec {
                users: users() / 8,
                rate_per_user_hz: 2.0,
                diurnal: None,
                seed: seed() + 1,
            },
            write_fraction: 0.0,
            think: SimDuration::ns(20),
            start: SimTime::ZERO,
        },
    ]
}

/// One table row: a tenant (or the cluster-total line) in one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// `nofault` or `crash`.
    pub cell: &'static str,
    /// Tenant name or `cluster`.
    pub tenant: String,
    /// Requests generated / completed / shed / failed.
    pub generated: u64,
    /// Completed requests.
    pub completed: u64,
    /// Requests dropped by admission control.
    pub shed: u64,
    /// Requests that exhausted retries.
    pub failed: u64,
    /// End-to-end latency quantiles (arrival→completion), microseconds.
    pub p50_us: f64,
    /// p99, microseconds.
    pub p99_us: f64,
    /// p99.9, microseconds.
    pub p999_us: f64,
    /// Fraction of progress-window sample intervals with completions.
    pub availability: f64,
}

fn tenant_row(cell: &'static str, t: &Tenant, w: &World) -> (Row, LatencyHistogram) {
    let h = t.latency(w);
    let row = Row {
        cell,
        tenant: t.name.clone(),
        generated: t.generated,
        completed: t.completed(w),
        shed: t.shed(w),
        failed: t.failed(w),
        p50_us: h.quantile_ns(0.50) / 1_000.0,
        p99_us: h.quantile_ns(0.99) / 1_000.0,
        p999_us: h.quantile_ns(0.999) / 1_000.0,
        availability: t.availability(w),
    };
    (row, h)
}

/// Run one cell (faulted or not) and return its rows: one per tenant plus
/// a cluster-total row whose counters are exact sums and whose quantiles
/// come from the merged tenant histograms.
fn run_one(scale: Scale, crash: bool, record: bool) -> Vec<Row> {
    let cell = if crash { "crash" } else { "nofault" };
    let mut cfg = super::cluster();
    // Aggregate tracing feeds the SLO phase histograms; the manager is
    // live in both cells so the comparison isolates the fault itself.
    cfg.trace = TraceConfig::aggregate();
    cfg.manager = ManagerConfig::enabled();
    if crash {
        cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
            at: SimTime::ZERO + SimDuration::us(300),
            node: super::n(3),
        });
    }
    let mut w = World::new(cfg);
    // Availability windows must be coarse relative to per-request latency
    // (a healthy-but-slow lane would alternate empty fine-grained windows).
    w.enable_sampling(super::sample_interval(scale).max(SimDuration::us(10)));
    let installed = serving::install(&mut w, &tenants(scale));
    super::apply_parallel(&mut w);
    w.run();
    if record {
        crate::report::record_slo(&format!("ext_serving/{cell}"), &w);
        if crash {
            crate::report::record_snapshot("ext_serving/crash", w.snapshot());
        }
    }
    let mut rows = Vec::new();
    let mut cluster = LatencyHistogram::new();
    for t in &installed {
        let (row, h) = tenant_row(cell, t, &w);
        rows.push(row);
        cluster.merge(&h);
    }
    // Cluster-wide availability over all completions, the same window
    // predicate as `report::slo_json`.
    let samples = w.samples();
    let mut windows = 0u64;
    let mut available = 0u64;
    for pair in samples.windows(2) {
        windows += 1;
        let advanced =
            pair[1].completions.iter().sum::<u64>() > pair[0].completions.iter().sum::<u64>();
        if advanced || pair[1].events_queued == 0 {
            available += 1;
        }
    }
    rows.push(Row {
        cell,
        tenant: "cluster".into(),
        generated: rows.iter().map(|r| r.generated).sum(),
        completed: rows.iter().map(|r| r.completed).sum(),
        shed: rows.iter().map(|r| r.shed).sum(),
        failed: rows.iter().map(|r| r.failed).sum(),
        p50_us: cluster.quantile_ns(0.50) / 1_000.0,
        p99_us: cluster.quantile_ns(0.99) / 1_000.0,
        p999_us: cluster.quantile_ns(0.999) / 1_000.0,
        availability: if windows == 0 {
            1.0
        } else {
            available as f64 / windows as f64
        },
    });
    rows
}

/// Both cells, no-fault first. Cells run sequentially so the report
/// collector sees `nofault` before `crash` deterministically.
pub fn rows(scale: Scale, record: bool) -> Vec<Row> {
    let mut out = run_one(scale, false, record);
    out.extend(run_one(scale, true, record));
    out
}

/// Build the EXT-SERVING table.
pub fn table(scale: Scale) -> Table {
    let mut t = Table::new(
        "EXT-SERVING — open-loop multi-tenant serving, healthy vs donor crash",
        &[
            "cell",
            "tenant",
            "generated",
            "completed",
            "shed",
            "failed",
            "p50_us",
            "p99_us",
            "p999_us",
            "availability",
        ],
    );
    for r in rows(scale, true) {
        t.row(vec![
            r.cell.to_string(),
            r.tenant.clone(),
            r.generated.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.failed.to_string(),
            format!("{:.2}", r.p50_us),
            format!("{:.2}", r.p99_us),
            format!("{:.2}", r.p999_us),
            format!("{:.3}", r.availability),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_and_cluster_sums() {
        let all = rows(Scale::Smoke, false);
        assert_eq!(all.len(), 6, "2 cells × (2 tenants + cluster)");
        for cell in ["nofault", "crash"] {
            let cs: Vec<&Row> = all.iter().filter(|r| r.cell == cell).collect();
            let cluster = cs.iter().find(|r| r.tenant == "cluster").unwrap();
            let tenants: Vec<&&Row> = cs.iter().filter(|r| r.tenant != "cluster").collect();
            for r in &tenants {
                assert_eq!(
                    r.completed + r.shed + r.failed,
                    r.generated,
                    "{cell}/{}: request conservation",
                    r.tenant
                );
                assert!(r.p50_us <= r.p99_us && r.p99_us <= r.p999_us);
                assert!(r.availability > 0.0 && r.availability <= 1.0);
            }
            for f in [
                |r: &Row| r.generated,
                |r: &Row| r.completed,
                |r: &Row| r.shed,
                |r: &Row| r.failed,
            ] {
                assert_eq!(
                    tenants.iter().map(|r| f(r)).sum::<u64>(),
                    f(cluster),
                    "{cell}: per-tenant rows must sum to the cluster row"
                );
            }
        }
        // The no-fault cell completes everything; the crash really bites
        // the KV tenant (lost requests or a visibly degraded tail).
        let nofault = all
            .iter()
            .find(|r| r.cell == "nofault" && r.tenant == "cluster")
            .unwrap();
        assert_eq!(nofault.completed, nofault.generated);
        let kv_ok = all
            .iter()
            .find(|r| r.cell == "nofault" && r.tenant == "kv")
            .unwrap();
        let kv_hit = all
            .iter()
            .find(|r| r.cell == "crash" && r.tenant == "kv")
            .unwrap();
        assert!(
            kv_hit.completed < kv_hit.generated || kv_hit.p999_us > kv_ok.p999_us,
            "donor crash must cost the KV tenant requests or tail latency"
        );
    }

    #[test]
    fn rows_are_deterministic() {
        assert_eq!(rows(Scale::Smoke, false), rows(Scale::Smoke, false));
    }
}
