//! The machine-readable run report — the `COHFREE_JSON` pipeline.
//!
//! Experiment bins print human-readable tables to stdout; this module
//! accumulates the *same* results as a single structured JSON document so
//! plots and regression checks never re-parse console output.
//!
//! Every [`Table::print`] records its table here automatically, and the
//! cluster-level experiments (Figs. 6–8) additionally record
//! [`ClusterSnapshot`]s — per-node RMC/fabric/DRAM counters plus the
//! sampling probe's queue-depth time series. A bin's `main` ends with
//! [`finish`], which writes the accumulated document to the path named by
//! the `COHFREE_JSON` environment variable (and does nothing when the
//! variable is unset, so plain console runs are unchanged).
//!
//! Bins that trace in Full mode (currently `ext_breakdown`) also call
//! [`record_trace`]; `finish` merges those span streams into one Chrome
//! trace-event JSON file at the path named by `COHFREE_TRACE`, loadable
//! in Perfetto / `chrome://tracing`. Both variables are independent.
//!
//! The document also carries a `metrics` section of SLO accounting blocks
//! (see [`record_slo`]) derived purely from deterministic simulation
//! state, so it is byte-identical whichever engine ran the worlds and
//! whether the self-profiling registry is on or off. The *nondeterministic*
//! self-profiling data (wall-clock attribution, worker occupancy) is kept
//! out of the report on purpose; `finish` exports it separately as
//! Prometheus text to the path named by `COHFREE_METRICS`.
//!
//! ```sh
//! COHFREE_SCALE=smoke COHFREE_JSON=out.json \
//!     cargo run --release -p cohfree-bench --bin all_figures
//! ```

use crate::table::Table;
use cohfree_core::world::World;
use cohfree_core::{ClusterSnapshot, Json};
use cohfree_sim::span::Phase;
use std::sync::Mutex;

static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    tables: Vec::new(),
    snapshots: Vec::new(),
    trace_events: Vec::new(),
    slos: Vec::new(),
    traced_worlds: 0,
});

struct Collector {
    tables: Vec<Json>,
    snapshots: Vec<Json>,
    trace_events: Vec<Json>,
    slos: Vec<Json>,
    traced_worlds: u64,
}

/// Pid stride between recorded worlds in the merged Chrome trace: each
/// world's nodes occupy `[base + 1, base + 16]`, so strides of 100 keep
/// them visually grouped per run in Perfetto.
const TRACE_PID_STRIDE: u64 = 100;

/// Record a finished results table. Called by [`Table::print`]; call it
/// directly for tables that are built but never printed.
pub fn record_table(t: &Table) {
    COLLECTOR
        .lock()
        .expect("report collector poisoned")
        .tables
        .push(t.to_json());
}

/// Record a cluster snapshot under `name` (e.g. `"fig6/hops3"`).
pub fn record_snapshot(name: &str, snap: ClusterSnapshot) {
    let entry = Json::obj([("name", Json::from(name)), ("cluster", snap.into_json())]);
    COLLECTOR
        .lock()
        .expect("report collector poisoned")
        .snapshots
        .push(entry);
}

/// Derive the SLO accounting block for a finished world: per-phase and
/// end-to-end latency quantiles (p50/p99/p99.9) from the aggregate span
/// histograms, plus availability over the sampling probe's windows. A
/// window counts as *available* when the cluster made client progress
/// during it (cumulative completions advanced) or had nothing left to do
/// (drained queue); a stalled window — events pending, zero completions —
/// is unavailable time, which is exactly what a donor crash produces
/// between detection and evacuation.
///
/// Everything here is computed from simulation state only — virtual time,
/// deterministic histograms — never from the self-profiling registry, so
/// the block is byte-identical across engines, partition counts and
/// metrics tiers.
pub fn slo_json(world: &World) -> Json {
    let trace = world.trace();
    let mut phases = Vec::new();
    for p in Phase::ALL {
        let h = trace.phase_hist(p);
        if h.count() == 0 {
            continue;
        }
        phases.push(Json::obj([
            ("phase", Json::from(p.name())),
            ("count", Json::from(h.count())),
            ("p50_ns", Json::from(h.quantile_ns(0.50))),
            ("p99_ns", Json::from(h.quantile_ns(0.99))),
            ("p999_ns", Json::from(h.quantile_ns(0.999))),
        ]));
    }
    let samples = world.samples();
    let mut windows = 0u64;
    let mut available = 0u64;
    for pair in samples.windows(2) {
        windows += 1;
        let advanced =
            pair[1].completions.iter().sum::<u64>() > pair[0].completions.iter().sum::<u64>();
        if advanced || pair[1].events_queued == 0 {
            available += 1;
        }
    }
    Json::obj([
        ("phases", Json::Arr(phases)),
        (
            "availability",
            Json::obj([
                ("windows", Json::from(windows)),
                ("available", Json::from(available)),
                (
                    "fraction",
                    Json::from(if windows == 0 {
                        1.0
                    } else {
                        available as f64 / windows as f64
                    }),
                ),
            ]),
        ),
    ])
}

/// Record `world`'s SLO accounting block under `name`.
pub fn record_slo(name: &str, world: &World) {
    record_slo_json(name, slo_json(world));
}

/// Record a pre-computed SLO block (see [`slo_json`]) under `name`. Split
/// from [`record_slo`] so sweeps that run on the worker pool can derive
/// the block inside the parallel closure and merge it back in input order,
/// keeping the report byte-identical to a sequential sweep.
pub fn record_slo_json(name: &str, slo: Json) {
    let entry = Json::obj([("name", Json::from(name)), ("slo", slo)]);
    COLLECTOR
        .lock()
        .expect("report collector poisoned")
        .slos
        .push(entry);
}

/// Record `world`'s retained span stream (Full trace mode) under `name`
/// into the Chrome trace accumulated for `COHFREE_TRACE`. Each recorded
/// world gets its own pid range so multiple runs coexist in one Perfetto
/// view. A world traced in Off/Aggregate mode contributes nothing.
pub fn record_trace(name: &str, world: &World) {
    let mut c = COLLECTOR.lock().expect("report collector poisoned");
    let pid_base = c.traced_worlds * TRACE_PID_STRIDE;
    c.traced_worlds += 1;
    let prefix = if name.is_empty() {
        String::new()
    } else {
        format!("{name}/")
    };
    let events = world.trace().chrome_events(pid_base, &prefix);
    c.trace_events.extend(events);
}

/// Drop everything recorded so far — tables, snapshots and trace streams.
/// The determinism end-to-end test runs the full suite twice in one process
/// and must start the second pass from an empty collector.
pub fn reset() {
    let mut c = COLLECTOR.lock().expect("report collector poisoned");
    c.tables.clear();
    c.snapshots.clear();
    c.trace_events.clear();
    c.slos.clear();
    c.traced_worlds = 0;
}

/// Assemble the Chrome trace-event document from every world recorded via
/// [`record_trace`] so far. The collector is left intact.
pub fn trace_document() -> Json {
    let c = COLLECTOR.lock().expect("report collector poisoned");
    Json::obj([
        ("traceEvents", Json::Arr(c.trace_events.clone())),
        ("displayTimeUnit", Json::from("ns")),
    ])
}

/// Assemble the full report document from everything recorded so far.
/// The collector is left intact, so this may be called repeatedly.
pub fn document() -> Json {
    let c = COLLECTOR.lock().expect("report collector poisoned");
    Json::obj([
        ("format", Json::from("cohfree-report-v1")),
        ("scale", Json::from(crate::Scale::from_env().name())),
        ("tables", Json::Arr(c.tables.clone())),
        ("cluster_snapshots", Json::Arr(c.snapshots.clone())),
        ("metrics", Json::obj([("slos", Json::Arr(c.slos.clone()))])),
    ])
}

/// Write the report document to `path`.
pub fn write_to(path: &str) -> std::io::Result<()> {
    let mut text = document().to_string();
    text.push('\n');
    std::fs::write(path, text)
}

/// End-of-run hook for every experiment bin: if `COHFREE_JSON` names a
/// path, write the accumulated document there, and if `COHFREE_TRACE`
/// names a path, write the merged Chrome trace there. A write failure is
/// reported on stderr and exits non-zero — a CI artifact silently missing
/// is worse than a failed job.
pub fn finish() {
    if let Some(path) = env_path("COHFREE_JSON") {
        match write_to(&path) {
            Ok(()) => eprintln!("report: wrote JSON document to {path}"),
            Err(e) => {
                eprintln!("report: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = env_path("COHFREE_TRACE") {
        let mut text = trace_document().to_string();
        text.push('\n');
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("report: wrote Chrome trace to {path}"),
            Err(e) => {
                eprintln!("report: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = cohfree_core::envknob::metrics_export_path() {
        let text = cohfree_sim::metrics::render_prometheus();
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("report: wrote Prometheus metrics to {path}"),
            Err(e) => {
                eprintln!("report: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn env_path(var: &str) -> Option<String> {
    std::env::var(var).ok().filter(|p| !p.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_and_snapshots_accumulate_into_the_document() {
        let mut t = Table::new("report demo table", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        record_table(&t);

        let doc = document();
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some("cohfree-report-v1")
        );
        let tables = doc.get("tables").unwrap().as_array().unwrap();
        let ours = tables
            .iter()
            .find(|t| t.get("title").and_then(Json::as_str) == Some("report demo table"))
            .expect("recorded table present");
        assert_eq!(
            ours.get("rows").unwrap().as_array().unwrap()[0]
                .as_array()
                .unwrap()[1]
                .as_str(),
            Some("2")
        );
        // The document round-trips through its serialized form.
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert!(reparsed
            .get("cluster_snapshots")
            .unwrap()
            .as_array()
            .is_some());
    }

    #[test]
    fn slo_blocks_land_in_the_metrics_section() {
        record_slo_json(
            "report demo slo",
            Json::obj([("phases", Json::Arr(Vec::new()))]),
        );
        let doc = document();
        let slos = doc
            .get("metrics")
            .and_then(|m| m.get("slos"))
            .and_then(Json::as_array)
            .expect("metrics.slos present");
        assert!(slos
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("report demo slo")));
    }
}
