//! The machine-readable run report — the `COHFREE_JSON` pipeline.
//!
//! Experiment bins print human-readable tables to stdout; this module
//! accumulates the *same* results as a single structured JSON document so
//! plots and regression checks never re-parse console output.
//!
//! Every [`Table::print`] records its table here automatically, and the
//! cluster-level experiments (Figs. 6–8) additionally record
//! [`ClusterSnapshot`]s — per-node RMC/fabric/DRAM counters plus the
//! sampling probe's queue-depth time series. A bin's `main` ends with
//! [`finish`], which writes the accumulated document to the path named by
//! the `COHFREE_JSON` environment variable (and does nothing when the
//! variable is unset, so plain console runs are unchanged).
//!
//! ```sh
//! COHFREE_SCALE=smoke COHFREE_JSON=out.json \
//!     cargo run --release -p cohfree-bench --bin all_figures
//! ```

use crate::table::Table;
use cohfree_core::{ClusterSnapshot, Json};
use std::sync::Mutex;

static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    tables: Vec::new(),
    snapshots: Vec::new(),
});

struct Collector {
    tables: Vec<Json>,
    snapshots: Vec<Json>,
}

/// Record a finished results table. Called by [`Table::print`]; call it
/// directly for tables that are built but never printed.
pub fn record_table(t: &Table) {
    COLLECTOR
        .lock()
        .expect("report collector poisoned")
        .tables
        .push(t.to_json());
}

/// Record a cluster snapshot under `name` (e.g. `"fig6/hops3"`).
pub fn record_snapshot(name: &str, snap: ClusterSnapshot) {
    let entry = Json::obj([("name", Json::from(name)), ("cluster", snap.into_json())]);
    COLLECTOR
        .lock()
        .expect("report collector poisoned")
        .snapshots
        .push(entry);
}

/// Assemble the full report document from everything recorded so far.
/// The collector is left intact, so this may be called repeatedly.
pub fn document() -> Json {
    let c = COLLECTOR.lock().expect("report collector poisoned");
    Json::obj([
        ("format", Json::from("cohfree-report-v1")),
        ("scale", Json::from(crate::Scale::from_env().name())),
        ("tables", Json::Arr(c.tables.clone())),
        ("cluster_snapshots", Json::Arr(c.snapshots.clone())),
    ])
}

/// Write the report document to `path`.
pub fn write_to(path: &str) -> std::io::Result<()> {
    let mut text = document().to_string();
    text.push('\n');
    std::fs::write(path, text)
}

/// End-of-run hook for every experiment bin: if `COHFREE_JSON` names a
/// path, write the accumulated document there. A write failure is reported
/// on stderr and exits non-zero — a CI artifact silently missing is worse
/// than a failed job.
pub fn finish() {
    let Ok(path) = std::env::var("COHFREE_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    match write_to(&path) {
        Ok(()) => eprintln!("report: wrote JSON document to {path}"),
        Err(e) => {
            eprintln!("report: failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_and_snapshots_accumulate_into_the_document() {
        let mut t = Table::new("report demo table", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        record_table(&t);

        let doc = document();
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some("cohfree-report-v1")
        );
        let tables = doc.get("tables").unwrap().as_array().unwrap();
        let ours = tables
            .iter()
            .find(|t| t.get("title").and_then(Json::as_str) == Some("report demo table"))
            .expect("recorded table present");
        assert_eq!(
            ours.get("rows").unwrap().as_array().unwrap()[0]
                .as_array()
                .unwrap()[1]
                .as_str(),
            Some("2")
        );
        // The document round-trips through its serialized form.
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert!(reparsed
            .get("cluster_snapshots")
            .unwrap()
            .as_array()
            .is_some());
    }
}
