//! Minimal aligned-table / CSV printing for experiment output.

use cohfree_core::Json;

/// A printable experiment result set.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The rows accumulated so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Structured view for the JSON report: `{title, headers, rows}` with
    /// rows as arrays of cell strings, in print order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::from(self.title.as_str())),
            ("headers", Json::from(self.headers.clone())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| Json::from(r.clone())).collect()),
            ),
        ])
    }

    /// Print both renderings to stdout, and record the table into the run's
    /// JSON report (see [`crate::report`]).
    pub fn print(&self) {
        println!("{}", self.render());
        println!("csv:\n{}", self.to_csv());
        crate::report::record_table(self);
    }
}

/// Format a microsecond value compactly.
pub fn us(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a millisecond value compactly.
pub fn ms(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["300".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long_header"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,long_header\n1,2\n300,4\n");
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn json_view_matches_contents() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        let j = t.to_json();
        assert_eq!(
            j.to_string(),
            r#"{"title":"demo","headers":["a","b"],"rows":[["1","x,y"]]}"#
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
