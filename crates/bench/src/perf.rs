//! The performance-regression harness behind `--bin perf`.
//!
//! Micro benchmarks time the simulator's hottest primitives (event-queue
//! push/pop, one fabric hop, one blocking remote transaction) with the
//! batched [`crate::bencher`]; macro benchmarks time whole smoke-scale
//! figure runs and report engine throughput in events per second. Results
//! land in the standard report document (`COHFREE_JSON=BENCH_PERF.json`)
//! and can be gated against a checked-in baseline with a wide,
//! machine-tolerant regression bound.
//!
//! ## Baseline policy
//!
//! `crates/bench/perf_baseline.json` is a committed `BENCH_PERF.json` from
//! a routine dev-container run. Absolute nanoseconds vary between hosts by
//! far more than any optimization we care about, so the compare mode only
//! fails on *gross* regressions — `current > tolerance × baseline` with a
//! default tolerance of 3× — which survives noisy shared CI runners while
//! still catching an accidental return to heap-per-event or hash-per-hop
//! behaviour. Refresh the baseline whenever an intentional change moves the
//! numbers: rerun the bin with `COHFREE_JSON` pointing at the baseline
//! path and commit the result.

use crate::bencher::{bench_function, BenchResult};
use crate::table::Table;
use crate::Scale;
use cohfree_core::world::World;
use cohfree_core::{Json, MsgKind, SimDuration, SimTime};
use cohfree_sim::EventQueue;

/// One macro measurement: a whole smoke-scale experiment.
#[derive(Debug, Clone)]
pub struct MacroResult {
    /// Benchmark name (`macro/fig6`, ...).
    pub name: String,
    /// Best-of-repetitions wall time in milliseconds.
    pub wall_ms: f64,
    /// Engine events processed per wall-clock second, taken from the same
    /// repetition that produced `wall_ms`.
    pub events_per_sec: f64,
}

/// Run the micro suite and return one result per primitive.
pub fn micro() -> Vec<BenchResult> {
    let mut out = Vec::new();

    // Event queue: steady-state schedule+pop against a populated queue,
    // delays spread across front, ring and overflow ranges.
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = SimTime::ZERO;
    for i in 0..4_096u64 {
        q.schedule(t + SimDuration::ns(i % 900), i);
    }
    let mut i = 0u64;
    out.push(bench_function("micro/event_queue_push_pop", || {
        let (at, v) = q.pop().expect("queue stays non-empty");
        t = at;
        // Re-schedule at a delay that cycles through bucket regimes.
        let dly = [7u64, 130, 950, 17_000, 70_000][(i % 5) as usize];
        q.schedule(t + SimDuration::ns(dly), v);
        i += 1;
    }));

    // One fabric hop: forwarding step of a 64 B read between neighbours,
    // including link FIFO accounting.
    let mut fabric = cohfree_fabric::Fabric::new(
        cohfree_core::Topology::Mesh2D {
            width: 4,
            height: 4,
        },
        cohfree_fabric::FabricConfig::default(),
    );
    let src = cohfree_core::NodeId::new(1);
    let msg = cohfree_fabric::Message::new(
        src,
        cohfree_core::NodeId::new(2),
        MsgKind::ReadReq { bytes: 64 },
        1,
    );
    let mut now = SimTime::ZERO;
    out.push(bench_function("micro/fabric_hop", || {
        now += SimDuration::ns(100);
        std::hint::black_box(fabric.step(now, src, &msg));
    }));

    // One blocking remote transaction end to end: client RMC, six fabric
    // hops each way, server RMC and DRAM — the simulator's unit of work.
    let mut w = World::new(cohfree_core::ClusterConfig::prototype());
    let client = cohfree_core::NodeId::new(1);
    let server = cohfree_core::NodeId::new(16);
    let resv = w.reserve_remote(client, 1_024, Some(server));
    let mut at = SimTime::ZERO;
    let mut addr = resv.prefixed_base;
    out.push(bench_function("micro/remote_transaction", || {
        at = w.blocking_transaction(at, client, server, MsgKind::ReadReq { bytes: 64 }, addr);
        addr = resv.prefixed_base + (addr + 64 - resv.prefixed_base) % (resv.frames * 4096);
    }));

    out
}

/// Run the macro suite: smoke-scale figure wall clock plus engine
/// throughput. Wall times are best-of-3 to suppress scheduler noise.
pub fn macro_suite() -> Vec<MacroResult> {
    let mut out = Vec::new();
    // Best of 3 repetitions; each returns the engine-event count it
    // processed, so every row carries an events/second throughput taken
    // from the same (fastest) repetition as the wall time.
    fn best_of(mut f: impl FnMut() -> u64) -> (f64, f64) {
        let mut best = (f64::INFINITY, 0.0);
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            let events = f();
            let secs = t0.elapsed().as_secs_f64();
            if secs * 1e3 < best.0 {
                best = (secs * 1e3, events as f64 / secs.max(1e-9));
            }
        }
        best
    }

    let (wall_ms, events_per_sec) = best_of(|| {
        let (_, _, events) = std::hint::black_box(crate::experiments::fig6::run(Scale::Smoke));
        events
    });
    out.push(MacroResult {
        name: "macro/fig6".into(),
        wall_ms,
        events_per_sec,
    });

    let (wall_ms, events_per_sec) = best_of(|| {
        let (_, events) = std::hint::black_box(crate::experiments::fig7::run(Scale::Smoke));
        events
    });
    out.push(MacroResult {
        name: "macro/fig7".into(),
        wall_ms,
        events_per_sec,
    });

    // Engine throughput: a saturated 8-thread random-read world, measured
    // as events processed per wall second.
    let (wall_ms, events_per_sec) = best_of(|| {
        let mut w = World::new(cohfree_core::ClusterConfig::prototype());
        let client = cohfree_core::NodeId::new(1);
        let resv = w.reserve_remote(client, 8_192, Some(cohfree_core::NodeId::new(16)));
        for k in 0..8u64 {
            w.spawn_thread(
                cohfree_core::world::ThreadSpec {
                    node: client,
                    zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                    accesses: 4_000,
                    bytes: 64,
                    write_fraction: 0.2,
                    think: SimDuration::ns(5),
                    seed: 7_000 + k,
                },
                SimTime::ZERO,
            );
        }
        w.run();
        w.events_processed()
    });
    out.push(MacroResult {
        name: "macro/engine_throughput".into(),
        wall_ms,
        events_per_sec,
    });

    // Big-world engine rows: the same 256-node swap-heavy world run on the
    // sequential engine and on the conservative parallel engine with 8
    // partitions. The parallel engine is output-invariant, so these rows
    // differ only in wall clock; `big_world_seq` guards the sequential
    // default against regression and `big_world_par8` guards the parallel
    // path (its baseline, like every row, is host-relative — on multi-core
    // machines it lands well below `big_world_seq`).
    for (name, parts) in [("macro/big_world_seq", 1), ("macro/big_world_par8", 8)] {
        let (wall_ms, events_per_sec) = best_of(|| {
            let mut w = big_world();
            w.set_parallel(parts);
            w.run();
            w.events_processed()
        });
        out.push(MacroResult {
            name: name.into(),
            wall_ms,
            events_per_sec,
        });
    }

    // Open-loop serving rows: the same 256-node multi-tenant serving world
    // on the sequential and the 8-partition engine. Serving threads stress
    // paths the closed-loop big world never touches — arrival-clamped
    // wakes, zipf addressing, per-request latency histograms — so they get
    // their own seq/par row pair in the baseline and the parallel gate.
    for (name, parts) in [("macro/serving_seq", 1), ("macro/serving_par8", 8)] {
        let (wall_ms, events_per_sec) = best_of(|| {
            let mut w = serving_world();
            w.set_parallel(parts);
            w.run();
            w.events_processed()
        });
        out.push(MacroResult {
            name: name.into(),
            wall_ms,
            events_per_sec,
        });
    }

    // Recovery-manager chaos cell: a crash-storm world with the manager
    // enabled, guarding the observation/decision loop and the proactive
    // migration path against wall-clock regression.
    let (wall_ms, events_per_sec) = best_of(|| {
        let mut w = crate::chaos::build_world(
            crate::chaos::ChaosSpec {
                scenario: crate::chaos::Scenario::CrashStorm,
                seed: 0xC4A0,
                manager: true,
            },
            500,
        );
        w.run();
        w.events_processed()
    });
    out.push(MacroResult {
        name: "macro/chaos_manager".into(),
        wall_ms,
        events_per_sec,
    });

    out
}

/// The ≥256-node world behind the `macro/big_world_*` rows: a 16×16 mesh
/// with 128 swap-heavy client threads spread across the machine, each
/// hammering a zone borrowed from a distant donor. Every node is either a
/// client or a donor, so traffic crosses partition boundaries constantly
/// and the event density keeps each conservative window full.
pub fn big_world() -> World {
    big_world_with(625)
}

/// [`big_world`] with a custom per-thread access count, so EXT-PARPROF can
/// shrink or grow the same workload shape by scale tier.
pub fn big_world_with(accesses: u64) -> World {
    let mut cfg = cohfree_core::ClusterConfig::prototype();
    cfg.topology = cohfree_core::Topology::Mesh2D {
        width: 16,
        height: 16,
    };
    let mut w = World::new(cfg);
    for k in 0..128u64 {
        let client = cohfree_core::NodeId::new((k * 2 + 1) as u16);
        let donor = cohfree_core::NodeId::new((256 - k * 2) as u16);
        let resv = w.reserve_remote(client, 1_024, Some(donor));
        w.spawn_thread(
            cohfree_core::world::ThreadSpec {
                node: client,
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses,
                bytes: 64,
                write_fraction: 0.3,
                think: SimDuration::ns(5),
                seed: 9_900 + k,
            },
            SimTime::ZERO,
        );
    }
    w
}

/// The 256-node world behind the `macro/serving_*` rows: sixteen open-loop
/// tenants (alternating zipf point-KV and sequential columnar-scan mixes)
/// spread across a 16×16 mesh, each folding a quarter-million simulated
/// users into a Poisson arrival stream over four serving lanes. Clients
/// and donors sit in different mesh rows, so traffic crosses partition
/// boundaries constantly, like the big world.
pub fn serving_world() -> World {
    use cohfree_workloads::serving::{ArrivalSpec, RequestMix, TenantSpec};
    let mut cfg = cohfree_core::ClusterConfig::prototype();
    cfg.topology = cohfree_core::Topology::Mesh2D {
        width: 16,
        height: 16,
    };
    let mut w = World::new(cfg);
    let tenants: Vec<TenantSpec> = (0..16u64)
        .map(|k| TenantSpec {
            name: format!("t{k}"),
            client: cohfree_core::NodeId::new((k * 16 + 1) as u16),
            donors: vec![cohfree_core::NodeId::new((256 - k * 16) as u16)],
            frames_per_donor: 256,
            lanes: 4,
            requests: 1_500,
            mix: if k % 2 == 0 {
                RequestMix::PointKv {
                    zipf_s: 0.9,
                    value_bytes: 64,
                }
            } else {
                RequestMix::ColumnarScan { chunk_bytes: 1024 }
            },
            arrivals: ArrivalSpec {
                users: 250_000,
                rate_per_user_hz: 4.0,
                diurnal: None,
                seed: 0x5EC0 + k,
            },
            write_fraction: 0.1,
            think: SimDuration::ns(5),
            start: SimTime::ZERO,
        })
        .collect();
    cohfree_workloads::serving::install(&mut w, &tenants);
    w
}

/// The zero-cost-when-off contract, measured: events/second of the
/// sequential big-world row with the self-profiling registry disabled vs
/// enabled, best of 5 repetitions each (`(off_eps, on_eps)`). The
/// sequential engine is the hottest per-event path, so it is where a
/// probe that is not truly branch-only would show first. The registry
/// tier found on entry is restored before returning.
pub fn metrics_overhead() -> (f64, f64) {
    use cohfree_sim::metrics;
    fn best_eps() -> f64 {
        let mut best = 0.0f64;
        for _ in 0..5 {
            let mut w = big_world();
            let t0 = std::time::Instant::now();
            w.run();
            let eps = w.events_processed() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
            best = best.max(eps);
        }
        best
    }
    let was = metrics::enabled();
    // Force the one-shot COHFREE_METRICS auto-enable (first World::new in
    // the process) to fire *before* we pin the tier, so it cannot flip the
    // registry back on mid-measurement.
    drop(World::new(cohfree_core::ClusterConfig::prototype()));
    metrics::set_enabled(false);
    let off = best_eps();
    metrics::set_enabled(true);
    metrics::reset();
    let on = best_eps();
    metrics::set_enabled(was);
    (off, on)
}

/// Render the suites as report tables (recorded via [`Table::print`]): the
/// two gated `PERF — ` tables plus a derived table with cross-row ratios
/// such as the parallel-engine speedup. The derived table's title
/// deliberately does *not* start with `PERF — `, so the regression gate
/// ([`metrics_from_document`]) never reads it — ratios are compared by the
/// dedicated `--par-gate` check instead of the per-row tolerance bound.
pub fn tables(micro: &[BenchResult], mac: &[MacroResult]) -> Vec<Table> {
    let mut tm = Table::new(
        "PERF — microbenchmarks (batched, median of samples)",
        &["name", "median_ns", "best_ns", "batch"],
    );
    for r in micro {
        tm.row(vec![
            r.name.clone(),
            format!("{:.1}", r.median_ns),
            format!("{:.1}", r.best_ns),
            r.batch.to_string(),
        ]);
    }
    let mut tg = Table::new(
        "PERF — macrobenchmarks (smoke scale, best of 3)",
        &["name", "wall_ms", "events_per_sec"],
    );
    for r in mac {
        tg.row(vec![
            r.name.clone(),
            format!("{:.1}", r.wall_ms),
            if r.events_per_sec > 0.0 {
                format!("{:.0}", r.events_per_sec)
            } else {
                "-".into()
            },
        ]);
    }
    let mut td = Table::new(
        "PERF derived — parallel engine (informational, not gated)",
        &["name", "value", "note"],
    );
    if let Some(s) = par_speedup(mac) {
        td.row(vec![
            "speedup_par/seq".into(),
            format!("{s:.2}x"),
            "big_world_seq wall / big_world_par8 wall".into(),
        ]);
    }
    if let Some(s) = serving_par_speedup(mac) {
        td.row(vec![
            "serving_speedup_par/seq".into(),
            format!("{s:.2}x"),
            "serving_seq wall / serving_par8 wall".into(),
        ]);
    }
    vec![tm, tg, td]
}

/// Wall-clock ratio of a sequential row over its parallel twin (`> 1` =
/// parallel wins). `None` if either row is missing.
fn speedup(mac: &[MacroResult], seq_name: &str, par_name: &str) -> Option<f64> {
    let wall = |n: &str| mac.iter().find(|r| r.name == n).map(|r| r.wall_ms);
    Some(wall(seq_name)? / wall(par_name)?.max(1e-9))
}

/// Wall-clock speedup of the parallel big-world row over the sequential
/// one (`> 1` = parallel wins). `None` if either row is missing.
pub fn par_speedup(mac: &[MacroResult]) -> Option<f64> {
    speedup(mac, "macro/big_world_seq", "macro/big_world_par8")
}

/// Wall-clock speedup of the parallel serving row over the sequential one.
pub fn serving_par_speedup(mac: &[MacroResult]) -> Option<f64> {
    speedup(mac, "macro/serving_seq", "macro/serving_par8")
}

/// `(name, headline-metric)` pairs for the regression gate: median ns for
/// micro rows, wall ms for macro rows. Lower is better for every metric.
pub fn metrics(micro: &[BenchResult], mac: &[MacroResult]) -> Vec<(String, f64)> {
    micro
        .iter()
        .map(|r| (r.name.clone(), r.median_ns))
        .chain(mac.iter().map(|r| (r.name.clone(), r.wall_ms)))
        .collect()
}

/// Extract the same `(name, metric)` pairs from a previously written
/// `BENCH_PERF.json` document (the checked-in baseline).
pub fn metrics_from_document(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let tables = doc
        .get("tables")
        .and_then(Json::as_array)
        .ok_or("baseline has no tables array")?;
    let mut out = Vec::new();
    for t in tables {
        let title = t.get("title").and_then(Json::as_str).unwrap_or("");
        // Column 1 carries the headline metric in both PERF tables.
        if !title.starts_with("PERF — ") {
            continue;
        }
        for row in t
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("PERF table has no rows")?
        {
            let cells = row.as_array().ok_or("PERF row is not an array")?;
            let name = cells
                .first()
                .and_then(Json::as_str)
                .ok_or("PERF row has no name")?;
            let metric: f64 = cells
                .get(1)
                .and_then(Json::as_str)
                .ok_or("PERF row has no metric")?
                .parse()
                .map_err(|e| format!("unparsable metric for {name}: {e}"))?;
            out.push((name.to_string(), metric));
        }
    }
    if out.is_empty() {
        return Err("no PERF rows found in baseline".into());
    }
    Ok(out)
}

/// Compare current metrics against a baseline: every benchmark present in
/// both must satisfy `current <= tolerance * baseline`. Returns the list of
/// violations as human-readable lines (empty = pass). Benchmarks only on
/// one side are reported informationally by the caller, never failures —
/// adding a bench must not break an older baseline.
pub fn compare(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (name, cur) in current {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if *cur > tolerance * base {
            violations.push(format!(
                "{name}: {cur:.1} vs baseline {base:.1} (>{tolerance:.1}x)"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recovery manager's idle cost on a healthy cluster, measured in
    /// engine events (deterministic, host-independent): enabling it on a
    /// fault-free world must stay under 3% extra events — the periodic
    /// observation tick plus nothing else, since no Shed/Readmit/Rehome
    /// ever fires without a fault.
    #[test]
    fn manager_overhead_on_a_fault_free_world_is_under_three_percent() {
        let events = |manager: bool| {
            let mut cfg = cohfree_core::ClusterConfig::prototype();
            if manager {
                cfg.manager = cohfree_core::ManagerConfig::enabled();
            }
            let mut w = World::new(cfg);
            let client = cohfree_core::NodeId::new(1);
            let resv = w.reserve_remote(client, 2_048, Some(cohfree_core::NodeId::new(16)));
            for k in 0..4u64 {
                w.spawn_thread(
                    cohfree_core::world::ThreadSpec {
                        node: client,
                        zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                        accesses: 2_000,
                        bytes: 64,
                        write_fraction: 0.2,
                        think: SimDuration::ns(5),
                        seed: 4_400 + k,
                    },
                    SimTime::ZERO,
                );
            }
            w.run();
            (w.events_processed(), w.now())
        };
        let (off, t_off) = events(false);
        let (on, t_on) = events(true);
        // The final manager tick drains after the last workload event, so
        // the end time may trail by at most one tick period.
        assert!(
            t_on >= t_off && t_on.since(t_off) <= SimDuration::us(2),
            "an idle manager must not perturb the workload ({t_on:?} vs {t_off:?})"
        );
        let overhead = on as f64 / off as f64 - 1.0;
        assert!(
            overhead < 0.03,
            "manager adds {:.2}% events on a fault-free world ({on} vs {off})",
            overhead * 100.0
        );
    }

    #[test]
    fn compare_flags_only_gross_regressions() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 10.0)];
        let ok = vec![("a".to_string(), 250.0), ("b".to_string(), 9.0)];
        assert!(compare(&ok, &base, 3.0).is_empty());
        let bad = vec![("a".to_string(), 301.0), ("b".to_string(), 9.0)];
        let v = compare(&bad, &base, 3.0);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("a:"), "{v:?}");
        // A bench missing from the baseline is not a failure.
        let newer = vec![("c".to_string(), 1e9)];
        assert!(compare(&newer, &base, 3.0).is_empty());
    }

    #[test]
    fn metrics_round_trip_through_the_report_document() {
        let micro = vec![BenchResult {
            name: "micro/x".into(),
            median_ns: 12.5,
            best_ns: 11.0,
            batch: 1024,
            samples: 25,
        }];
        let mac = vec![
            MacroResult {
                name: "macro/big_world_seq".into(),
                wall_ms: 42.0,
                events_per_sec: 1e6,
            },
            MacroResult {
                name: "macro/big_world_par8".into(),
                wall_ms: 21.0,
                events_per_sec: 2e6,
            },
        ];
        let ts = tables(&micro, &mac);
        assert_eq!(ts.len(), 3, "micro + macro + derived");
        // The derived table carries the speedup ratio...
        assert_eq!(ts[2].rows()[0][0], "speedup_par/seq");
        assert_eq!(ts[2].rows()[0][1], "2.00x");
        let doc = Json::obj([("tables", Json::Arr(ts.iter().map(Table::to_json).collect()))]);
        let parsed = metrics_from_document(&doc).unwrap();
        // ...but the regression gate only reads the two `PERF — ` tables:
        // the ratio row must never be compared against the tolerance bound.
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0], ("micro/x".to_string(), 12.5));
        assert_eq!(parsed[1], ("macro/big_world_seq".to_string(), 42.0));
        assert_eq!(parsed[2], ("macro/big_world_par8".to_string(), 21.0));
        assert!(parsed.iter().all(|(n, _)| n != "speedup_par/seq"));
        // The gate compares like for like.
        assert!(compare(&parsed, &parsed, 1.0).is_empty());
    }

    #[test]
    fn par_speedup_reads_the_big_world_rows() {
        let mac = vec![
            MacroResult {
                name: "macro/big_world_seq".into(),
                wall_ms: 30.0,
                events_per_sec: 1e6,
            },
            MacroResult {
                name: "macro/big_world_par8".into(),
                wall_ms: 10.0,
                events_per_sec: 3e6,
            },
        ];
        assert_eq!(par_speedup(&mac), Some(3.0));
        assert_eq!(par_speedup(&mac[..1]), None);
    }
}
