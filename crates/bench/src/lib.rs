#![warn(missing_docs)]

//! # cohfree-bench — the experiment harness
//!
//! One module per results figure of the paper (and per ablation), each
//! exposing a pure function that runs the experiment and returns rows; thin
//! `src/bin/*.rs` mains print them. The same functions back the Criterion
//! benches, so `cargo bench` exercises every figure's code path.
//!
//! ## Scale
//!
//! Experiments default to a scaled-down size that finishes in seconds.
//! Set `COHFREE_SCALE=paper` for paper-scale runs (10 M-key trees, 500 k
//! searches — minutes of wall time), or `COHFREE_SCALE=smoke` for CI-speed
//! runs. Scaling changes problem sizes, never the architecture, so curve
//! *shapes* are preserved.

pub mod experiments;
pub mod table;

/// Run `f` over `items` on one OS thread per item (experiments are
/// independent, deterministic simulations — embarrassingly parallel), and
/// return the results in input order. Falls back to sequential for a
/// single item.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = items.iter().map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items.into_iter().map(|item| s.spawn(|_| f(item))).collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("experiment thread panicked"));
        }
    })
    .expect("crossbeam scope");
    out.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Experiment size tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity runs (used by `cargo bench` and tests).
    Smoke,
    /// Default: minutes-at-most runs preserving every curve shape.
    Default,
    /// The paper's sizes.
    Paper,
}

impl Scale {
    /// Read the tier from `COHFREE_SCALE` (`smoke` / `default` / `paper`).
    pub fn from_env() -> Scale {
        match std::env::var("COHFREE_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Pick one of three values by tier.
    pub fn pick<T: Copy>(self, smoke: T, default: T, paper: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Default => default,
            Scale::Paper => paper,
        }
    }
}
