#![warn(missing_docs)]

//! # cohfree-bench — the experiment harness
//!
//! One module per results figure of the paper (and per ablation), each
//! exposing a pure function that runs the experiment and returns rows; thin
//! `src/bin/*.rs` mains print them. The same functions back the Criterion
//! benches, so `cargo bench` exercises every figure's code path.
//!
//! ## Scale
//!
//! Experiments default to a scaled-down size that finishes in seconds.
//! Set `COHFREE_SCALE=paper` for paper-scale runs (10 M-key trees, 500 k
//! searches — minutes of wall time), or `COHFREE_SCALE=smoke` for CI-speed
//! runs. Scaling changes problem sizes, never the architecture, so curve
//! *shapes* are preserved.

pub mod bencher;
pub mod chaos;
pub mod experiments;
pub mod perf;
pub mod report;
pub mod table;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over `items` on a bounded worker pool (experiments are
/// independent, deterministic simulations — embarrassingly parallel), and
/// return the results in input order.
///
/// At most [`std::thread::available_parallelism`] OS threads are spawned
/// regardless of how many items a sweep contains; workers pull items off a
/// shared index so a paper-scale sweep of dozens of configurations never
/// spawns dozens of threads. Falls back to sequential for a single item.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i]
                    .lock()
                    .expect("item mutex poisoned")
                    .take()
                    .expect("each index claimed once");
                let r = f(item);
                *slots[i].lock().expect("slot mutex poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot mutex poisoned")
                .expect("all slots filled")
        })
        .collect()
}

/// Experiment size tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity runs (used by `cargo bench` and tests).
    Smoke,
    /// Default: minutes-at-most runs preserving every curve shape.
    Default,
    /// The paper's sizes.
    Paper,
}

impl Scale {
    /// Read the tier from `COHFREE_SCALE` (`smoke` / `default` / `paper`).
    pub fn from_env() -> Scale {
        match std::env::var("COHFREE_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// The tier's canonical name (as accepted by `COHFREE_SCALE`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }

    /// Pick one of three values by tier.
    pub fn pick<T: Copy>(self, smoke: T, default: T, paper: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Default => default,
            Scale::Paper => paper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = parallel_map(items.clone(), |x| x * 3 + 1);
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_item_is_sequential() {
        assert_eq!(parallel_map(vec![7u64], |x| x + 1), vec![8]);
        assert_eq!(
            parallel_map(Vec::<u64>::new(), |x| x + 1),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn parallel_map_caps_concurrent_threads() {
        // Many more items than cores: the observed peak concurrency must
        // stay within available_parallelism (the old implementation spawned
        // one thread per item and would peak at ~items).
        let cap = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..cap * 8 + 13).collect();
        let out = parallel_map(items.clone(), |x| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out, items);
        let observed = peak.load(Ordering::SeqCst);
        assert!(
            observed <= cap,
            "peak concurrency {observed} exceeds available parallelism {cap}"
        );
        assert!(observed >= 1);
    }
}
