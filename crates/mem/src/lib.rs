#![warn(missing_docs)]

//! # cohfree-mem — node memory hardware model
//!
//! Per-node memory subsystem of the prototype: four Opteron sockets, each
//! with its own DDR2 memory controller, and the caches in front of them.
//!
//! * [`store`] — [`store::SparseStore`], the *functional* contents of
//!   physical memory: a sparse, page-granular byte store so a "128 GB" pool
//!   costs only what is actually touched,
//! * [`dram`] — [`dram::NodeMemory`], the *timing* of local accesses:
//!   socket-interleaved FIFO memory controllers with deterministic service
//!   times,
//! * [`cache`] — [`cache::Cache`], a set-associative write-back cache used
//!   as a timing filter in front of both local and remote physical memory
//!   (the prototype maps remote ranges write-back cacheable),
//! * [`hierarchy`] — an optional L1+L2 refinement of the cache model
//!   (degenerates exactly to the single cache when the L1 is absent),
//! * [`map`] — [`map::PhysMap`], the BAR-style physical address decode that
//!   sends each access to a local controller or to the RMC.
//!
//! ### Functional vs. timing state
//!
//! Data is written through to the [`store::SparseStore`] immediately; the
//! cache tracks only tags/dirtiness and is consulted for *timing* and for
//! write-back traffic accounting. This is exact for the architecture being
//! modelled: a memory region has exactly one owning node (one coherency
//! domain), and the home node never reads frames it has lent out, so no
//! agent can ever observe memory "behind" a dirty cached line.

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod map;
pub mod store;

pub use cache::{Cache, CacheConfig, CacheOutcome};
pub use dram::{DramConfig, NodeMemory};
pub use hierarchy::{CacheHierarchy, HierarchyOutcome, Level};
pub use map::{PhysMap, Target};
pub use store::{SparseStore, PAGE_BYTES};
