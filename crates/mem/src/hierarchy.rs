//! Optional two-level cache hierarchy.
//!
//! The baseline model uses one cache as the aggregate hierarchy a core
//! sees. [`CacheHierarchy`] refines that with a small, fast L1 in front of
//! the L2 (non-inclusive/non-exclusive — "NINE" — the Opteron family's
//! policy): fills populate both levels, an L1 dirty victim is absorbed by
//! the L2, and only L2 dirty victims reach memory. With `l1: None` the
//! hierarchy degenerates *exactly* to the single-cache baseline, so the
//! refinement is opt-in and never perturbs existing calibration.

use crate::cache::{Cache, CacheConfig, CacheOutcome};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Hit in the (optional) level-1 cache.
    L1,
    /// Hit in the level-2 cache (L1 filled on the way, when present).
    L2,
    /// Missed the whole hierarchy; the backing memory must be accessed.
    Memory,
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Level that satisfied the access.
    pub level: Level,
    /// Dirty lines displaced all the way out of the hierarchy; the owner
    /// must write them back to their home memory.
    pub memory_writebacks: Vec<u64>,
}

/// A two-level (or degenerate single-level) write-back cache hierarchy.
#[derive(Debug)]
pub struct CacheHierarchy {
    l1: Option<Cache>,
    l2: Cache,
}

impl CacheHierarchy {
    /// Build a hierarchy; `l1 = None` gives the single-cache baseline.
    ///
    /// # Panics
    /// Panics if the two levels disagree on line size (mixed-line
    /// hierarchies need sectoring, which the Opteron did not use).
    pub fn new(l1: Option<CacheConfig>, l2: CacheConfig) -> CacheHierarchy {
        if let Some(c1) = l1 {
            assert_eq!(
                c1.line_bytes, l2.line_bytes,
                "L1 and L2 must share a line size"
            );
        }
        CacheHierarchy {
            l1: l1.map(Cache::new),
            l2: Cache::new(l2),
        }
    }

    /// Line size of the hierarchy.
    pub fn line_bytes(&self) -> u32 {
        self.l2.config().line_bytes
    }

    /// Access the line containing `addr`; `write` dirties it.
    pub fn access(&mut self, addr: u64, write: bool) -> HierarchyOutcome {
        let mut memory_writebacks = Vec::new();
        // L1 first (when present).
        if let Some(l1) = self.l1.as_mut() {
            match l1.access(addr, write) {
                CacheOutcome::Hit => {
                    return HierarchyOutcome {
                        level: Level::L1,
                        memory_writebacks,
                    };
                }
                CacheOutcome::Miss { victim_writeback } => {
                    if let Some(v) = victim_writeback {
                        // L2 absorbs the L1 dirty victim (NINE policy).
                        if let Some(spilled) = self.l2.install_dirty(v) {
                            memory_writebacks.push(spilled);
                        }
                    }
                }
            }
        }
        // L2 (the demand access; on an L1 hit we never get here).
        match self.l2.access(addr, write) {
            CacheOutcome::Hit => HierarchyOutcome {
                level: Level::L2,
                memory_writebacks,
            },
            CacheOutcome::Miss { victim_writeback } => {
                if let Some(v) = victim_writeback {
                    memory_writebacks.push(v);
                }
                HierarchyOutcome {
                    level: Level::Memory,
                    memory_writebacks,
                }
            }
        }
    }

    /// Flush everything; returns the deduplicated dirty lines that must be
    /// written back to memory.
    pub fn flush_all(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        if let Some(l1) = self.l1.as_mut() {
            dirty.extend(l1.flush_all());
        }
        dirty.extend(self.l2.flush_all());
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Drop all lines in `[base, base+len)`, returning deduplicated dirty
    /// lines for write-back.
    pub fn flush_range(&mut self, base: u64, len: u64) -> Vec<u64> {
        let mut dirty = Vec::new();
        if let Some(l1) = self.l1.as_mut() {
            dirty.extend(l1.flush_range(base, len));
        }
        dirty.extend(self.l2.flush_range(base, len));
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// L1 hits so far (0 without an L1).
    pub fn l1_hits(&self) -> u64 {
        self.l1.as_ref().map_or(0, Cache::hits)
    }

    /// L2 demand hits so far.
    pub fn l2_hits(&self) -> u64 {
        self.l2.hits()
    }

    /// Full-hierarchy misses so far.
    pub fn misses(&self) -> u64 {
        self.l2.misses()
    }

    /// The L2 (aggregate) cache, for geometry queries.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_sim::Rng;
    use std::collections::HashSet;

    fn small() -> CacheHierarchy {
        CacheHierarchy::new(
            Some(CacheConfig {
                line_bytes: 64,
                sets: 2,
                ways: 2,
            }), // 256 B L1
            CacheConfig {
                line_bytes: 64,
                sets: 8,
                ways: 2,
            }, // 1 KiB L2
        )
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = small();
        assert_eq!(h.access(0, false).level, Level::Memory);
        assert_eq!(h.access(0, false).level, Level::L1);
        assert_eq!(h.l1_hits(), 1);
    }

    #[test]
    fn l2_serves_l1_victims() {
        let mut h = small();
        // Fill lines 0, 128, 256 — all map to L1 set 0 (2 ways): line 0 is
        // evicted from L1 but stays in L2.
        h.access(0, false);
        h.access(128, false);
        h.access(256, false);
        assert_eq!(h.access(0, false).level, Level::L2);
    }

    #[test]
    fn dirty_l1_victims_are_absorbed_not_lost() {
        let mut h = small();
        h.access(0, true); // dirty in L1
        h.access(128, false);
        let out = h.access(256, false); // evicts line 0 from L1 (dirty)
                                        // The dirty line moved into L2, not to memory.
        assert!(out.memory_writebacks.is_empty());
        // Flushing must still surface it exactly once.
        let dirty = h.flush_all();
        assert_eq!(dirty, vec![0]);
    }

    #[test]
    fn degenerate_hierarchy_matches_single_cache() {
        let cfg = CacheConfig {
            line_bytes: 64,
            sets: 4,
            ways: 2,
        };
        let mut h = CacheHierarchy::new(None, cfg);
        let mut c = Cache::new(cfg);
        let mut rng = Rng::new(9);
        for _ in 0..2_000 {
            let addr = rng.below(1 << 16);
            let write = rng.chance(0.3);
            let hout = h.access(addr, write);
            let cout = c.access(addr, write);
            match cout {
                CacheOutcome::Hit => {
                    assert_eq!(hout.level, Level::L2);
                    assert!(hout.memory_writebacks.is_empty());
                }
                CacheOutcome::Miss { victim_writeback } => {
                    assert_eq!(hout.level, Level::Memory);
                    assert_eq!(
                        hout.memory_writebacks,
                        victim_writeback.into_iter().collect::<Vec<_>>()
                    );
                }
            }
        }
        assert_eq!(h.l2_hits(), c.hits());
        assert_eq!(h.misses(), c.misses());
        assert_eq!(h.flush_all(), c.flush_all());
    }

    #[test]
    fn no_dirty_line_is_ever_lost() {
        // Random op stream: every line ever dirtied must either appear in a
        // memory writeback or in the final flush (at least once).
        let mut h = small();
        let mut rng = Rng::new(11);
        let mut dirtied: HashSet<u64> = HashSet::new();
        let mut written_back: HashSet<u64> = HashSet::new();
        for _ in 0..3_000 {
            let addr = rng.below(1 << 12) & !63;
            let write = rng.chance(0.5);
            let out = h.access(addr, write);
            written_back.extend(out.memory_writebacks);
            if write {
                dirtied.insert(addr);
            }
        }
        written_back.extend(h.flush_all());
        for line in dirtied {
            assert!(written_back.contains(&line), "lost dirty line {line:#x}");
        }
    }

    #[test]
    fn l1_filters_repeat_traffic_from_l2() {
        let mut with_l1 = small();
        let mut without = CacheHierarchy::new(
            None,
            CacheConfig {
                line_bytes: 64,
                sets: 8,
                ways: 2,
            },
        );
        // Hammer one hot line.
        for _ in 0..100 {
            with_l1.access(0, false);
            without.access(0, false);
        }
        assert!(with_l1.l1_hits() >= 99);
        assert_eq!(with_l1.l2_hits(), 0, "L1 absorbed the stream");
        assert_eq!(without.l2_hits(), 99);
    }

    #[test]
    fn flush_range_spans_both_levels() {
        let mut h = small();
        h.access(0, true);
        h.access(128, true);
        h.access(256, true); // pushes 0's dirty copy into L2
        let dirty = h.flush_range(0, 192);
        assert_eq!(dirty, vec![0, 128]);
    }

    #[test]
    #[should_panic(expected = "share a line size")]
    fn mismatched_line_sizes_rejected() {
        CacheHierarchy::new(
            Some(CacheConfig {
                line_bytes: 32,
                sets: 2,
                ways: 1,
            }),
            CacheConfig {
                line_bytes: 64,
                sets: 2,
                ways: 1,
            },
        );
    }
}
