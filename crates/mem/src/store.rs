//! Functional contents of physical memory.
//!
//! [`SparseStore`] is a byte-addressable store backed by 4 KiB pages that are
//! materialized on first touch (zero-filled, like real DRAM handed out by an
//! OS). The prototype aggregates 128 GiB across the cluster; a dense model
//! would be unusable, while the sparse model costs memory proportional to the
//! bytes actually written.

use cohfree_sim::FastMap;

/// Page size used by the backing store and by the OS model (x86-64 base pages).
pub const PAGE_BYTES: u64 = 4096;

/// Sparse byte-addressable memory.
///
/// Reads of never-written locations return zeroes without materializing a
/// page, so read-mostly probes stay cheap.
#[derive(Debug, Default)]
pub struct SparseStore {
    pages: FastMap<u64, Box<[u8; PAGE_BYTES as usize]>>,
}

impl SparseStore {
    /// An empty (all-zero) store.
    pub fn new() -> SparseStore {
        SparseStore {
            pages: FastMap::default(),
        }
    }

    /// Number of pages materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of backing memory actually in use.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let mut addr = addr;
        let mut rest = buf;
        while !rest.is_empty() {
            let page = addr / PAGE_BYTES;
            let off = (addr % PAGE_BYTES) as usize;
            let n = rest.len().min(PAGE_BYTES as usize - off);
            let (chunk, tail) = rest.split_at_mut(n);
            match self.pages.get(&page) {
                Some(p) => chunk.copy_from_slice(&p[off..off + n]),
                None => chunk.fill(0),
            }
            rest = tail;
            addr += n as u64;
        }
    }

    /// Write `data` starting at `addr`, materializing pages as needed.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut addr = addr;
        let mut rest = data;
        while !rest.is_empty() {
            let page = addr / PAGE_BYTES;
            let off = (addr % PAGE_BYTES) as usize;
            let n = rest.len().min(PAGE_BYTES as usize - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES as usize]));
            p[off..off + n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            addr += n as u64;
        }
    }

    /// Read a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Copy `len` bytes from `src` to `dst` (ranges may overlap).
    pub fn copy(&mut self, src: u64, dst: u64, len: usize) {
        let mut buf = vec![0u8; len];
        self.read(src, &mut buf);
        self.write(dst, &buf);
    }

    /// Drop the page containing `addr`, returning it to the all-zero state.
    pub fn discard_page(&mut self, addr: u64) {
        self.pages.remove(&(addr / PAGE_BYTES));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero_without_materializing() {
        let s = SparseStore::new();
        let mut buf = [0xAAu8; 64];
        s.read(1 << 40, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = SparseStore::new();
        let data: Vec<u8> = (0..=255).collect();
        s.write(123, &data);
        let mut back = vec![0u8; 256];
        s.read(123, &mut back);
        assert_eq!(back, data);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn writes_spanning_pages() {
        let mut s = SparseStore::new();
        let data = vec![7u8; 3 * PAGE_BYTES as usize];
        let addr = PAGE_BYTES - 100; // straddles 4 pages
        s.write(addr, &data);
        assert_eq!(s.resident_pages(), 4);
        let mut back = vec![0u8; data.len()];
        s.read(addr, &mut back);
        assert_eq!(back, data);
        // Bytes just outside the write remain zero.
        let mut edge = [0u8; 1];
        s.read(addr - 1, &mut edge);
        assert_eq!(edge[0], 0);
        s.read(addr + data.len() as u64, &mut edge);
        assert_eq!(edge[0], 0);
    }

    #[test]
    fn u64_helpers() {
        let mut s = SparseStore::new();
        s.write_u64(PAGE_BYTES - 4, 0xDEAD_BEEF_CAFE_F00D); // straddles a page
        assert_eq!(s.read_u64(PAGE_BYTES - 4), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn copy_moves_bytes() {
        let mut s = SparseStore::new();
        s.write(0, b"hello cluster");
        s.copy(0, 10_000, 13);
        let mut back = [0u8; 13];
        s.read(10_000, &mut back);
        assert_eq!(&back, b"hello cluster");
    }

    #[test]
    fn discard_page_zeroes() {
        let mut s = SparseStore::new();
        s.write_u64(0, 42);
        s.write_u64(PAGE_BYTES, 43);
        s.discard_page(0);
        assert_eq!(s.read_u64(0), 0);
        assert_eq!(s.read_u64(PAGE_BYTES), 43);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn resident_bytes_tracks_pages() {
        let mut s = SparseStore::new();
        s.write(0, &[1]);
        s.write(PAGE_BYTES * 10, &[1]);
        assert_eq!(s.resident_bytes(), 2 * PAGE_BYTES);
    }
}
