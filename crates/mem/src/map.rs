//! BAR-style physical address decode.
//!
//! Figure 3 of the paper: each node sees a 48-bit physical address space in
//! which addresses whose 14 most-significant bits are zero refer to local
//! memory (owned by one of the socket memory controllers), and everything
//! else is mapped to the RMC. [`PhysMap`] performs that first-level decode;
//! the RMC crate owns the prefix codec itself.

/// Width of the node-identifier prefix (most-significant address bits).
pub const PREFIX_BITS: u32 = 14;
/// Total physical address width modelled (AMD64-era 48-bit).
pub const ADDR_BITS: u32 = 48;
/// Bits of address space owned by a single node (48 - 14 = 34 ⇒ 16 GiB).
pub const NODE_ADDR_BITS: u32 = ADDR_BITS - PREFIX_BITS;
/// Per-node address window size implied by the prefix split (16 GiB).
pub const NODE_WINDOW_BYTES: u64 = 1 << NODE_ADDR_BITS;

/// Where a physical access is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A local socket memory controller (socket index attached).
    Local {
        /// Socket whose controller owns the address.
        socket: u32,
    },
    /// The Remote Memory Controller (address carries a non-zero node prefix).
    Rmc,
    /// Prefix zero but beyond installed local memory — a hole; real hardware
    /// would master-abort. Treated as a fatal model error by callers.
    Hole,
}

/// First-level physical decode for one node.
#[derive(Debug, Clone, Copy)]
pub struct PhysMap {
    /// Bytes of DRAM installed locally.
    pub local_bytes: u64,
    /// Bytes attached per socket (for socket selection).
    pub bytes_per_socket: u64,
}

impl PhysMap {
    /// Build a decode map.
    ///
    /// # Panics
    /// Panics if the installed memory exceeds the per-node address window —
    /// the prefix scheme cannot address it.
    pub fn new(local_bytes: u64, bytes_per_socket: u64) -> PhysMap {
        assert!(
            local_bytes <= NODE_WINDOW_BYTES,
            "installed memory {local_bytes} exceeds the {NODE_WINDOW_BYTES}-byte node window"
        );
        assert!(bytes_per_socket > 0, "bytes_per_socket must be positive");
        PhysMap {
            local_bytes,
            bytes_per_socket,
        }
    }

    /// Decode a 48-bit physical address.
    pub fn decode(&self, addr: u64) -> Target {
        debug_assert!(addr < (1 << ADDR_BITS), "address beyond 48-bit space");
        if addr >> NODE_ADDR_BITS != 0 {
            Target::Rmc
        } else if addr < self.local_bytes {
            Target::Local {
                socket: (addr / self.bytes_per_socket) as u32,
            }
        } else {
            Target::Hole
        }
    }

    /// True if `addr` carries a non-zero node prefix.
    pub fn is_remote(addr: u64) -> bool {
        addr >> NODE_ADDR_BITS != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PhysMap {
        PhysMap::new(16 << 30, 4 << 30)
    }

    #[test]
    fn constants_match_the_paper() {
        // 14-bit prefix over 48-bit addresses leaves a 16 GiB node window —
        // exactly the prototype's per-node memory.
        assert_eq!(NODE_WINDOW_BYTES, 16 << 30);
    }

    #[test]
    fn local_addresses_route_to_sockets() {
        let m = map();
        assert_eq!(m.decode(0), Target::Local { socket: 0 });
        assert_eq!(m.decode((4 << 30) - 1), Target::Local { socket: 0 });
        assert_eq!(m.decode(4 << 30), Target::Local { socket: 1 });
        assert_eq!(m.decode((16u64 << 30) - 1), Target::Local { socket: 3 });
    }

    #[test]
    fn prefixed_addresses_route_to_rmc() {
        let m = map();
        // Node 1's window starts at 1 << 34.
        assert_eq!(m.decode(1 << NODE_ADDR_BITS), Target::Rmc);
        assert_eq!(m.decode((3 << NODE_ADDR_BITS) | 0x1234), Target::Rmc);
        assert!(PhysMap::is_remote(1 << NODE_ADDR_BITS));
        assert!(!PhysMap::is_remote((1 << NODE_ADDR_BITS) - 1));
    }

    #[test]
    fn holes_detected() {
        // A node with only 8 GiB installed: [8 GiB, 16 GiB) is a hole.
        let m = PhysMap::new(8 << 30, 4 << 30);
        assert_eq!(m.decode((8 << 30) + 1), Target::Hole);
        assert_eq!(m.decode((16u64 << 30) - 1), Target::Hole);
        assert_eq!(m.decode(0), Target::Local { socket: 0 });
    }

    #[test]
    #[should_panic(expected = "node window")]
    fn oversized_node_rejected() {
        PhysMap::new(NODE_WINDOW_BYTES + 1, 4 << 30);
    }
}
