//! Local DRAM timing.
//!
//! Each prototype node has four sockets, each socket owning a DDR2-800
//! memory controller for its 4 GiB of locally attached DIMMs. Physical
//! memory is split across sockets in contiguous ranges (the Opteron BAR
//! scheme of Fig. 2a). Each controller is a FIFO server: an access pays the
//! fixed DRAM access latency plus queueing behind earlier accesses to the
//! same controller, plus a per-burst occupancy while data is clocked out.

use cohfree_sim::queueing::FifoServer;
use cohfree_sim::stats::{Counter, LatencyHistogram};
use cohfree_sim::{SimDuration, SimTime};

/// DRAM controller timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct DramConfig {
    /// Sockets (= independent controllers) per node.
    pub sockets: u32,
    /// Bytes of memory attached to each socket.
    pub bytes_per_socket: u64,
    /// Fixed access latency (row activate + CAS + controller overhead).
    pub access_latency: SimDuration,
    /// Controller occupancy per 64-byte burst (limits throughput).
    pub burst_occupancy: SimDuration,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            sockets: 4,
            bytes_per_socket: 4 << 30, // 4 GiB, as in the prototype
            access_latency: SimDuration::ns(55),
            burst_occupancy: SimDuration::ns(10),
        }
    }
}

impl DramConfig {
    /// Total bytes of physical memory on the node.
    pub fn node_bytes(&self) -> u64 {
        self.bytes_per_socket * self.sockets as u64
    }
}

/// The node's local memory controllers.
#[derive(Debug)]
pub struct NodeMemory {
    cfg: DramConfig,
    controllers: Vec<FifoServer>,
    accesses: Counter,
    latency: LatencyHistogram,
}

impl NodeMemory {
    /// Build the controllers for one node.
    pub fn new(cfg: DramConfig) -> NodeMemory {
        assert!(cfg.sockets >= 1, "node needs at least one socket");
        NodeMemory {
            controllers: (0..cfg.sockets).map(|_| FifoServer::new()).collect(),
            cfg,
            accesses: Counter::new(),
            latency: LatencyHistogram::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Which socket's controller owns local physical address `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is beyond the node's physical memory — callers must
    /// decode through [`crate::map::PhysMap`] first.
    pub fn socket_of(&self, addr: u64) -> u32 {
        let s = addr / self.cfg.bytes_per_socket;
        assert!(
            s < self.cfg.sockets as u64,
            "local address {addr:#x} beyond node memory"
        );
        s as u32
    }

    /// Perform a timed access of `bytes` at local physical `addr` starting
    /// at `now`; returns the completion instant.
    pub fn access(&mut self, now: SimTime, addr: u64, bytes: u32) -> SimTime {
        let socket = self.socket_of(addr) as usize;
        let bursts = bytes.div_ceil(64).max(1) as u64;
        let occupancy = self.cfg.burst_occupancy * bursts;
        // Queue for the controller, then pay the array access latency.
        let served = self.controllers[socket].accept(now, occupancy);
        let done = served + self.cfg.access_latency;
        self.accesses.inc();
        self.latency.record(done.since(now));
        done
    }

    /// Unloaded latency for a `bytes`-sized access (no queueing) — the
    /// analytic model's `L_local`.
    pub fn unloaded_latency(&self, bytes: u32) -> SimDuration {
        let bursts = bytes.div_ceil(64).max(1) as u64;
        self.cfg.burst_occupancy * bursts + self.cfg.access_latency
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Observed access-latency distribution.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Largest time-to-drain backlog across controllers as seen at `now`.
    pub fn max_backlog(&self, now: SimTime) -> SimDuration {
        self.controllers
            .iter()
            .map(|c| c.backlog(now))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Utilization of the busiest controller over `[0, horizon]`.
    pub fn max_utilization(&self, horizon: SimTime) -> f64 {
        self.controllers
            .iter()
            .map(|c| c.utilization(horizon))
            .fold(0.0, f64::max)
    }

    /// Serializable view of access counters, the latency distribution and
    /// per-socket controller statistics, with utilization computed against
    /// `horizon`.
    pub fn snapshot(&self, horizon: SimTime) -> cohfree_sim::Json {
        use cohfree_sim::Json;
        let controllers = self
            .controllers
            .iter()
            .map(|c| c.snapshot(horizon))
            .collect::<Vec<_>>();
        Json::obj([
            ("accesses", self.accesses.snapshot()),
            ("latency", self.latency.snapshot()),
            ("max_utilization", Json::from(self.max_utilization(horizon))),
            ("controllers", Json::Arr(controllers)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> NodeMemory {
        NodeMemory::new(DramConfig::default())
    }

    #[test]
    fn socket_ranges() {
        let m = mem();
        let per = DramConfig::default().bytes_per_socket;
        assert_eq!(m.socket_of(0), 0);
        assert_eq!(m.socket_of(per - 1), 0);
        assert_eq!(m.socket_of(per), 1);
        assert_eq!(m.socket_of(3 * per + 5), 3);
    }

    #[test]
    #[should_panic(expected = "beyond node memory")]
    fn out_of_range_address_panics() {
        mem().socket_of(DramConfig::default().node_bytes());
    }

    #[test]
    fn single_access_pays_unloaded_latency() {
        let mut m = mem();
        let t = m.access(SimTime::ZERO, 0, 64);
        assert_eq!(t.since(SimTime::ZERO), m.unloaded_latency(64));
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn same_socket_accesses_queue() {
        let mut m = mem();
        let t1 = m.access(SimTime::ZERO, 0, 64);
        let t2 = m.access(SimTime::ZERO, 64, 64);
        // Second access starts its burst after the first's occupancy.
        assert_eq!(t2.since(t1), DramConfig::default().burst_occupancy);
    }

    #[test]
    fn different_sockets_run_in_parallel() {
        let mut m = mem();
        let per = DramConfig::default().bytes_per_socket;
        let t1 = m.access(SimTime::ZERO, 0, 64);
        let t2 = m.access(SimTime::ZERO, per, 64);
        assert_eq!(t1, t2);
    }

    #[test]
    fn large_access_occupies_longer() {
        let m = mem();
        let small = m.unloaded_latency(64);
        let page = m.unloaded_latency(4096);
        assert!(page > small);
        // 4096/64 = 64 bursts.
        assert_eq!(page - small, DramConfig::default().burst_occupancy * 63);
    }

    #[test]
    fn latency_histogram_records() {
        let mut m = mem();
        for i in 0..10 {
            m.access(SimTime::ZERO, i * 64, 64);
        }
        assert_eq!(m.latency().count(), 10);
        assert!(m.latency().mean_ns() >= m.unloaded_latency(64).as_ns_f64());
    }

    #[test]
    fn utilization_grows_with_load() {
        let mut m = mem();
        let horizon = SimTime::ZERO + SimDuration::us(1);
        for i in 0..50 {
            m.access(SimTime::ZERO, i * 64, 64);
        }
        assert!(m.max_utilization(horizon) > 0.4);
    }
}
