//! Set-associative write-back cache (timing filter).
//!
//! One cache instance models the cache hierarchy a single application core
//! sees (the prototype binds memory-hungry processes to one core). It caches
//! *physical* lines — both local DRAM and RMC-mapped remote ranges, because
//! the prototype configures remote memory write-back cacheable. It tracks
//! tags, dirtiness and LRU order only; data lives in the functional store
//! (see the crate docs for why that is exact here).
//!
//! The owner asks `access(addr, write)` and receives hit/miss plus any
//! victim writeback it must perform; `flush*` returns the dirty lines that a
//! read-only parallel phase must push out before other cores may share the
//! region (Section IV-B of the paper).

use cohfree_sim::stats::Counter;
use cohfree_sim::FastMap;

/// Log2 of the residency-group size in lines: groups of 64 lines (one 4 KiB
/// page at 64 B lines) get a resident-line count so range flushes can skip
/// groups with nothing cached.
const GROUP_SHIFT: u32 = 6;

/// Cache geometry.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 2 MiB, 16-way, 64 B lines — an Opteron-era L2/L3 aggregate.
        CacheConfig {
            line_bytes: 64,
            sets: 2048,
            ways: 16,
        }
    }
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.line_bytes as u64 * self.sets as u64 * self.ways as u64
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present.
    Hit,
    /// Line absent; it has been filled. If a dirty victim was displaced, its
    /// line-aligned address is returned and the caller must write it back.
    Miss {
        /// Line-aligned address of a displaced dirty victim the caller
        /// must write back, if any.
        victim_writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    lru: u64,
}

/// A set-associative write-back cache over physical addresses.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    /// Resident lines per 64-line group (key: line index >> GROUP_SHIFT).
    /// Lets `flush_range` skip groups with no cached lines — the dominant
    /// case when the swap path flushes a cold victim page on every
    /// page-cache eviction.
    group_lines: FastMap<u64, u32>,
    clock: u64,
    hits: Counter,
    misses: Counter,
    writebacks: Counter,
}

impl Cache {
    /// Build a cache with the given geometry.
    ///
    /// # Panics
    /// Panics unless `line_bytes` and `sets` are powers of two and `ways ≥ 1`.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            cfg.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(cfg.ways >= 1, "cache needs at least one way");
        Cache {
            sets: (0..cfg.sets)
                .map(|_| Vec::with_capacity(cfg.ways as usize))
                .collect(),
            group_lines: FastMap::default(),
            cfg,
            clock: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            writebacks: Counter::new(),
        }
    }

    /// The geometry in force.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.line_bytes as u64) & (self.cfg.sets as u64 - 1)) as usize
    }

    #[inline]
    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr / self.cfg.line_bytes as u64 / self.cfg.sets as u64
    }

    /// Reconstruct a line-aligned address from (set, tag).
    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        (tag * self.cfg.sets as u64 + set as u64) * self.cfg.line_bytes as u64
    }

    /// Track a line fill in the per-group residency count.
    #[inline]
    fn note_fill(&mut self, li: u64) {
        *self.group_lines.entry(li >> GROUP_SHIFT).or_insert(0) += 1;
    }

    /// Track a line eviction in the per-group residency count.
    #[inline]
    fn note_evict(&mut self, li: u64) {
        let g = li >> GROUP_SHIFT;
        match self.group_lines.get_mut(&g) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.group_lines.remove(&g);
            }
            None => debug_assert!(false, "evicting a line from an untracked group"),
        }
    }

    /// Look up the line containing `addr`; fill on miss. `write` marks the
    /// line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheOutcome {
        self.clock += 1;
        let la = self.line_addr(addr);
        let set_idx = self.set_of(la);
        let tag = self.tag_of(la);
        let ways = self.cfg.ways as usize;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= write;
            self.hits.inc();
            return CacheOutcome::Hit;
        }

        self.misses.inc();
        let mut evicted_line = None;
        let victim_writeback = if set.len() < ways {
            set.push(Line {
                tag,
                dirty: write,
                lru: self.clock,
            });
            None
        } else {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty set");
            let victim = set[vi];
            set[vi] = Line {
                tag,
                dirty: write,
                lru: self.clock,
            };
            evicted_line = Some(victim.tag * self.cfg.sets as u64 + set_idx as u64);
            if victim.dirty {
                self.writebacks.inc();
                Some(self.addr_of(set_idx, victim.tag))
            } else {
                None
            }
        };
        self.note_fill(la / self.cfg.line_bytes as u64);
        if let Some(li) = evicted_line {
            self.note_evict(li);
        }
        CacheOutcome::Miss { victim_writeback }
    }

    /// Install the line containing `addr` as dirty *without* counting a
    /// demand access — the path a lower cache level uses to absorb an upper
    /// level's dirty victim. Returns a displaced dirty victim, if any.
    pub fn install_dirty(&mut self, addr: u64) -> Option<u64> {
        self.clock += 1;
        let la = self.line_addr(addr);
        let set_idx = self.set_of(la);
        let tag = self.tag_of(la);
        let ways = self.cfg.ways as usize;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = self.clock;
            line.dirty = true;
            return None;
        }
        if set.len() < ways {
            set.push(Line {
                tag,
                dirty: true,
                lru: self.clock,
            });
            self.note_fill(la / self.cfg.line_bytes as u64);
            return None;
        }
        let (vi, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .expect("non-empty set");
        let victim = set[vi];
        set[vi] = Line {
            tag,
            dirty: true,
            lru: self.clock,
        };
        let victim_li = victim.tag * self.cfg.sets as u64 + set_idx as u64;
        self.note_fill(la / self.cfg.line_bytes as u64);
        self.note_evict(victim_li);
        if victim.dirty {
            self.writebacks.inc();
            Some(self.addr_of(set_idx, victim.tag))
        } else {
            None
        }
    }

    /// True if the line containing `addr` is present (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        let tag = self.tag_of(la);
        self.sets[self.set_of(la)].iter().any(|l| l.tag == tag)
    }

    /// Drop every line, returning the addresses of dirty ones (the caller
    /// must write them back). Models the explicit flush before a read-only
    /// parallel phase.
    pub fn flush_all(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for set_idx in 0..self.sets.len() {
            for line in std::mem::take(&mut self.sets[set_idx]) {
                if line.dirty {
                    dirty.push(self.addr_of(set_idx, line.tag));
                }
            }
        }
        self.group_lines.clear();
        self.writebacks.add(dirty.len() as u64);
        dirty.sort_unstable();
        dirty
    }

    /// Drop all lines within `[base, base+len)`, returning dirty addresses.
    pub fn flush_range(&mut self, base: u64, len: u64) -> Vec<u64> {
        let mut dirty = Vec::new();
        let lb = self.cfg.line_bytes as u64;
        let nsets = self.cfg.sets as u64;
        let set_shift = nsets.trailing_zeros();
        // Walk the range one residency group at a time: a group with no
        // resident lines is skipped with a single map probe — the dominant
        // case when the swap path flushes a cold victim page on every
        // page-cache eviction. Within a live group, each line maps to
        // exactly one (set, tag), so it is a targeted probe per line, not a
        // whole-cache scan.
        let first_line = base.div_ceil(lb);
        let end_line = (base + len).div_ceil(lb).max(first_line);
        let first_group = first_line >> GROUP_SHIFT;
        let last_group = if end_line == first_line {
            first_group
        } else {
            ((end_line - 1) >> GROUP_SHIFT) + 1
        };
        for g in first_group..last_group {
            let Some(&count) = self.group_lines.get(&g) else {
                continue;
            };
            let lo = (g << GROUP_SHIFT).max(first_line);
            let hi = ((g + 1) << GROUP_SHIFT).min(end_line);
            let whole_group = hi - lo == 1 << GROUP_SHIFT;
            let mut removed = 0u32;
            for li in lo..hi {
                if whole_group && removed == count {
                    break;
                }
                let set_idx = (li & (nsets - 1)) as usize;
                let tag = li >> set_shift;
                let set = &mut self.sets[set_idx];
                if let Some(pos) = set.iter().position(|l| l.tag == tag) {
                    let line = set.swap_remove(pos);
                    if line.dirty {
                        dirty.push(li * lb);
                    }
                    removed += 1;
                }
            }
            if removed == count {
                self.group_lines.remove(&g);
            } else if removed > 0 {
                *self.group_lines.get_mut(&g).expect("group tracked") -= removed;
            }
        }
        self.writebacks.add(dirty.len() as u64);
        dirty.sort_unstable();
        dirty
    }

    /// Lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Dirty-victim writebacks so far (including flushes).
    pub fn writebacks(&self) -> u64 {
        self.writebacks.get()
    }

    /// Hit ratio over all accesses (0 when untouched).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B — easy to reason about.
        Cache::new(CacheConfig {
            line_bytes: 64,
            sets: 4,
            ways: 2,
        })
    }

    /// The group residency counts must mirror the sets exactly through any
    /// access/install/flush interleaving, and flush_range must behave
    /// identically to a brute-force scan of every set.
    #[test]
    fn group_residency_tracks_sets_through_random_ops() {
        let mut rng = cohfree_sim::Rng::new(77);
        let mut c = Cache::new(CacheConfig {
            line_bytes: 64,
            sets: 16,
            ways: 2,
        });
        for _ in 0..20_000 {
            match rng.below(100) {
                0..=79 => {
                    let addr = rng.below(1 << 14);
                    c.access(addr, rng.below(2) == 0);
                }
                80..=89 => {
                    c.install_dirty(rng.below(1 << 14));
                }
                90..=97 => {
                    let base = rng.below(1 << 14) & !4095;
                    let dirty = c.flush_range(base, 4096);
                    for addr in dirty {
                        assert!(addr >= base && addr < base + 4096);
                    }
                    for set_idx in 0..16u64 {
                        for line in &c.sets[set_idx as usize] {
                            let addr = (line.tag * 16 + set_idx) * 64;
                            assert!(addr < base || addr >= base + 4096, "line survived flush");
                        }
                    }
                }
                _ => {
                    c.flush_all();
                    assert_eq!(c.resident_lines(), 0);
                }
            }
            // Rebuild the residency counts from the sets and compare.
            let mut expect: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
            for (set_idx, set) in c.sets.iter().enumerate() {
                for line in set {
                    let li = line.tag * 16 + set_idx as u64;
                    *expect.entry(li >> GROUP_SHIFT).or_insert(0) += 1;
                }
            }
            let got: std::collections::HashMap<u64, u32> =
                c.group_lines.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn geometry_round_trips() {
        let c = tiny();
        for addr in [0u64, 64, 4096, 123_456, 1 << 40] {
            let la = c.line_addr(addr);
            let set = c.set_of(la);
            let tag = c.tag_of(la);
            assert_eq!(c.addr_of(set, tag), la, "addr {addr:#x}");
        }
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(
            c.access(100, false),
            CacheOutcome::Miss {
                victim_writeback: None
            }
        );
        assert_eq!(c.access(100, false), CacheOutcome::Hit);
        assert_eq!(c.access(127, false), CacheOutcome::Hit, "same line");
        assert_eq!(
            c.access(128, false),
            CacheOutcome::Miss {
                victim_writeback: None
            }
        );
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to set 0: line addresses 0, 256, 512 (stride = sets*line).
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // refresh 0; 256 is now LRU
        match c.access(512, false) {
            CacheOutcome::Miss {
                victim_writeback: None,
            } => {}
            other => panic!("clean victim expected, got {other:?}"),
        }
        assert!(c.probe(0), "refreshed line survives");
        assert!(!c.probe(256), "LRU line evicted");
        assert!(c.probe(512));
    }

    #[test]
    fn dirty_victim_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(256, false);
        let out = c.access(512, false); // evicts line 0 (LRU, dirty)
        assert_eq!(
            out,
            CacheOutcome::Miss {
                victim_writeback: Some(0)
            }
        );
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // hit-for-write dirties the line
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(
            out,
            CacheOutcome::Miss {
                victim_writeback: Some(0)
            }
        );
    }

    #[test]
    fn flush_all_returns_exactly_dirty_lines() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let dirty = c.flush_all();
        assert_eq!(dirty, vec![0, 128]);
        assert_eq!(c.resident_lines(), 0);
        // After flush, everything misses again.
        assert!(matches!(c.access(64, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn flush_range_is_selective() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, true);
        c.access(128, true);
        let dirty = c.flush_range(64, 64);
        assert_eq!(dirty, vec![64]);
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn hit_ratio() {
        let mut c = tiny();
        assert_eq!(c.hit_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn capacity() {
        assert_eq!(CacheConfig::default().capacity_bytes(), 2 << 20);
        assert_eq!(tiny().config().capacity_bytes(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        Cache::new(CacheConfig {
            line_bytes: 48,
            sets: 4,
            ways: 1,
        });
    }
}
