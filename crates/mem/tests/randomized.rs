//! Seeded randomized tests for the memory models against host-side oracles.
//!
//! Offline build: no external property-testing framework; every case is
//! reproducible from the loop seed via the simulator's own [`Rng`].

use cohfree_mem::{Cache, CacheConfig, CacheOutcome, SparseStore};
use cohfree_sim::Rng;
use std::collections::HashSet;

const CASES: u64 = 48;

/// SparseStore behaves exactly like a flat byte array under arbitrary
/// interleavings of reads and writes.
#[test]
fn sparse_store_matches_flat_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x570E + seed);
        let mut store = SparseStore::new();
        let mut oracle = vec![0u8; 16_384];
        let ops = rng.range(1, 100);
        for _ in 0..ops {
            let addr = rng.below(8_192) as usize;
            let len0 = rng.range(1, 64) as usize;
            let data: Vec<u8> = (0..len0).map(|_| rng.next_u64() as u8).collect();
            let is_write = rng.chance(0.5);
            let len = data.len().min(oracle.len() - addr);
            if is_write {
                store.write(addr as u64, &data[..len]);
                oracle[addr..addr + len].copy_from_slice(&data[..len]);
            } else {
                let mut buf = vec![0u8; len];
                store.read(addr as u64, &mut buf);
                assert_eq!(&buf[..], &oracle[addr..addr + len], "seed {seed}");
            }
        }
        // Final full sweep.
        let mut full = vec![0u8; oracle.len()];
        store.read(0, &mut full);
        assert_eq!(full, oracle, "seed {seed}");
    }
}

/// The cache never exceeds its configured capacity and probe() agrees with
/// a shadow set of resident lines.
#[test]
fn cache_residency_invariants() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xCAC4E + seed);
        let cfg = CacheConfig {
            line_bytes: 64,
            sets: 1 << rng.range(1, 5),
            ways: rng.range(1, 5) as u32,
        };
        let capacity = (cfg.sets * cfg.ways) as usize;
        let mut cache = Cache::new(cfg);
        // `dirty` is exact: every dirty eviction is reported by contract, so
        // the shadow stays in sync. Residency truth comes from probe(),
        // which must agree with access() outcomes.
        let mut dirty: HashSet<u64> = HashSet::new();
        let ops = rng.range(1, 300);
        for _ in 0..ops {
            let addr = rng.below(1_000_000);
            let write = rng.chance(0.5);
            let line = addr & !63;
            let was_resident = cache.probe(addr);
            match cache.access(addr, write) {
                CacheOutcome::Hit => {
                    assert!(was_resident, "seed {seed}: hit on non-resident {line:#x}");
                }
                CacheOutcome::Miss { victim_writeback } => {
                    assert!(!was_resident, "seed {seed}: miss on resident {line:#x}");
                    if let Some(victim) = victim_writeback {
                        assert!(
                            dirty.remove(&victim),
                            "seed {seed}: clean victim {victim:#x} written back"
                        );
                        assert!(!cache.probe(victim), "seed {seed}: victim still resident");
                    }
                }
            }
            if write {
                dirty.insert(line);
            }
            assert!(
                cache.probe(addr),
                "seed {seed}: accessed line must be resident"
            );
            assert!(cache.resident_lines() <= capacity, "seed {seed}");
        }
        // Whatever the flush returns must have been dirtied at some point
        // and never written back since.
        let flushed: HashSet<u64> = cache.flush_all().into_iter().collect();
        for line in &flushed {
            assert!(
                dirty.contains(line),
                "seed {seed}: flush returned clean line {line:#x}"
            );
        }
        assert_eq!(cache.resident_lines(), 0, "seed {seed}");
    }
}

/// Every dirty line written is eventually accounted: it either comes back
/// as a victim write-back or in the final flush.
#[test]
fn cache_never_loses_dirty_lines() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xD127 + seed);
        let cfg = CacheConfig {
            line_bytes: 64,
            sets: 4,
            ways: 2,
        };
        let mut cache = Cache::new(cfg);
        let mut dirtied: HashSet<u64> = HashSet::new();
        let mut written_back: Vec<u64> = Vec::new();
        let ops = rng.range(1, 200);
        for _ in 0..ops {
            let addr = rng.below(100_000);
            if let CacheOutcome::Miss {
                victim_writeback: Some(v),
            } = cache.access(addr, true)
            {
                written_back.push(v);
            }
            dirtied.insert(addr & !63);
        }
        written_back.extend(cache.flush_all());
        let wb: HashSet<u64> = written_back.iter().copied().collect();
        for line in dirtied {
            assert!(
                wb.contains(&line),
                "seed {seed}: dirty line {line:#x} vanished"
            );
        }
    }
}
