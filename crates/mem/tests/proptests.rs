//! Property-based tests for the memory models.

use cohfree_mem::{Cache, CacheConfig, CacheOutcome, SparseStore};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// SparseStore behaves exactly like a flat byte array under arbitrary
    /// interleavings of reads and writes.
    #[test]
    fn sparse_store_matches_flat_oracle(
        ops in prop::collection::vec(
            (0usize..8_192, prop::collection::vec(any::<u8>(), 1..64), prop::bool::ANY),
            1..100
        )
    ) {
        let mut store = SparseStore::new();
        let mut oracle = vec![0u8; 16_384];
        for (addr, data, is_write) in ops {
            let len = data.len().min(oracle.len() - addr);
            if is_write {
                store.write(addr as u64, &data[..len]);
                oracle[addr..addr + len].copy_from_slice(&data[..len]);
            } else {
                let mut buf = vec![0u8; len];
                store.read(addr as u64, &mut buf);
                prop_assert_eq!(&buf[..], &oracle[addr..addr + len]);
            }
        }
        // Final full sweep.
        let mut full = vec![0u8; oracle.len()];
        store.read(0, &mut full);
        prop_assert_eq!(full, oracle);
    }

    /// The cache never exceeds its configured capacity and probe() agrees
    /// with a shadow set of resident lines.
    #[test]
    fn cache_residency_invariants(
        sets_pow in 1u32..5,
        ways in 1u32..5,
        addrs in prop::collection::vec((0u64..1_000_000, prop::bool::ANY), 1..300)
    ) {
        let cfg = CacheConfig { line_bytes: 64, sets: 1 << sets_pow, ways };
        let capacity = (cfg.sets * cfg.ways) as usize;
        let mut cache = Cache::new(cfg);
        // `dirty` is exact: every dirty eviction is reported by contract, so
        // the shadow stays in sync. Residency truth comes from probe(),
        // which must agree with access() outcomes.
        let mut dirty: HashSet<u64> = HashSet::new();
        for (addr, write) in addrs {
            let line = addr & !63;
            let was_resident = cache.probe(addr);
            match cache.access(addr, write) {
                CacheOutcome::Hit => {
                    prop_assert!(was_resident, "hit on non-resident {line:#x}");
                }
                CacheOutcome::Miss { victim_writeback } => {
                    prop_assert!(!was_resident, "miss on resident {line:#x}");
                    if let Some(victim) = victim_writeback {
                        prop_assert!(dirty.remove(&victim), "clean victim {victim:#x} written back");
                        prop_assert!(!cache.probe(victim), "victim still resident");
                    }
                }
            }
            if write {
                dirty.insert(line);
            }
            prop_assert!(cache.probe(addr), "accessed line must be resident");
            prop_assert!(cache.resident_lines() <= capacity);
        }
        // Whatever the flush returns must have been dirtied at some point
        // and never written back since.
        let flushed: HashSet<u64> = cache.flush_all().into_iter().collect();
        for line in &flushed {
            prop_assert!(dirty.contains(line), "flush returned clean line {line:#x}");
        }
        prop_assert_eq!(cache.resident_lines(), 0);
    }

    /// Every dirty line written is eventually accounted: it either comes
    /// back as a victim write-back or in the final flush.
    #[test]
    fn cache_never_loses_dirty_lines(
        addrs in prop::collection::vec(0u64..100_000, 1..200)
    ) {
        let cfg = CacheConfig { line_bytes: 64, sets: 4, ways: 2 };
        let mut cache = Cache::new(cfg);
        let mut dirtied: HashSet<u64> = HashSet::new();
        let mut written_back: Vec<u64> = Vec::new();
        for addr in addrs {
            if let CacheOutcome::Miss { victim_writeback: Some(v) } = cache.access(addr, true) {
                written_back.push(v);
            }
            dirtied.insert(addr & !63);
        }
        written_back.extend(cache.flush_all());
        let wb: HashSet<u64> = written_back.iter().copied().collect();
        for line in dirtied {
            prop_assert!(wb.contains(&line), "dirty line {line:#x} vanished");
        }
    }
}
