//! Property-based tests for the RMC: address codec, client slot discipline,
//! prefetcher bounds.

use cohfree_fabric::{MsgKind, NodeId};
use cohfree_rmc::addr::{decode, encode, split, strip_prefix, RemoteRef};
use cohfree_rmc::{Prefetcher, PrefetcherConfig, RmcClient, RmcConfig, Submit};
use cohfree_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// encode/split/strip round-trip for the whole prefix and offset space.
    #[test]
    fn addr_codec_round_trip(home in 1u16..16_384, offset in 0u64..(1 << 34)) {
        let home = NodeId::new(home);
        let addr = encode(home, offset);
        let (p, o) = split(addr);
        prop_assert_eq!(p, home.get());
        prop_assert_eq!(o, offset);
        prop_assert_eq!(strip_prefix(addr), offset);
        // Decoding from any *other* node sees a remote reference.
        let me = NodeId::new(if home.get() == 1 { 2 } else { 1 });
        prop_assert_eq!(decode(me, addr), RemoteRef::Remote { home, offset });
        // Decoding from the home node itself sees loopback.
        prop_assert_eq!(decode(home, addr), RemoteRef::Loopback { offset });
    }

    /// Prefix 0 is always local, whatever the offset.
    #[test]
    fn prefix_zero_is_local(me in 1u16..16_384, offset in 0u64..(1 << 34)) {
        prop_assert_eq!(
            decode(NodeId::new(me), offset),
            RemoteRef::Local { offset }
        );
    }

    /// The client never tracks more in-flight transactions than its slots,
    /// tags never repeat, and every response retires exactly one slot.
    #[test]
    fn client_slot_discipline(
        slots in 1usize..8,
        script in prop::collection::vec(prop::bool::ANY, 1..200)
    ) {
        let cfg = RmcConfig { request_slots: slots, ..RmcConfig::default() };
        let mut c = RmcClient::new(NodeId::new(1), cfg);
        let mut now = SimTime::ZERO;
        let mut outstanding: Vec<cohfree_fabric::Message> = Vec::new();
        let mut seen_tags = std::collections::HashSet::new();
        for submit in script {
            now += SimDuration::ns(10);
            if submit {
                match c.submit(now, NodeId::new(2), MsgKind::ReadReq { bytes: 64 }, 0) {
                    Submit::Accepted { msg, inject_at } => {
                        prop_assert!(inject_at >= now);
                        prop_assert!(seen_tags.insert(msg.tag), "tag reuse");
                        outstanding.push(msg);
                    }
                    Submit::Nacked { retry_at } => {
                        prop_assert_eq!(c.in_flight(), slots, "NACK while slots free");
                        prop_assert!(retry_at > now);
                    }
                }
            } else if let Some(msg) = outstanding.pop() {
                let before = c.in_flight();
                c.on_response(now, &msg.reply(MsgKind::ReadResp { bytes: 64 }));
                prop_assert_eq!(c.in_flight(), before - 1);
            }
            prop_assert!(c.in_flight() <= slots);
            prop_assert_eq!(c.in_flight(), outstanding.len());
        }
    }

    /// The prefetch buffer never exceeds its capacity, and every buffer hit
    /// was a previously filled line.
    #[test]
    fn prefetcher_buffer_bounded(
        buffer_lines in 1usize..16,
        accesses in prop::collection::vec(0u64..10_000, 1..300)
    ) {
        let cfg = PrefetcherConfig { buffer_lines, ..PrefetcherConfig::default() };
        let mut p = Prefetcher::new(cfg);
        let mut filled = std::collections::HashSet::new();
        for addr in accesses {
            let d = p.access(addr * 64);
            if d.buffer_hit {
                prop_assert!(filled.contains(&(addr * 64)), "hit on never-filled line");
            }
            for l in d.issue {
                p.fill(l);
                filled.insert(l);
            }
        }
        prop_assert!(p.buffer_hits() <= p.issued());
    }

    /// Strictly sequential streams eventually make almost every access a
    /// buffer hit (steady-state coverage).
    #[test]
    fn sequential_stream_coverage(start in 0u64..1_000_000, len in 32u64..200) {
        let mut p = Prefetcher::new(PrefetcherConfig::default());
        let base = start * 64;
        let mut hits = 0;
        for i in 0..len {
            let d = p.access(base + i * 64);
            if d.buffer_hit {
                hits += 1;
            }
            for l in d.issue {
                p.fill(l);
            }
        }
        // After the 2-access training prefix, everything should hit.
        prop_assert!(hits as u64 >= len - 3, "only {hits} hits in {len} sequential accesses");
    }
}
