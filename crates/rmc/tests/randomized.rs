//! Seeded randomized tests for the RMC: address codec, client slot
//! discipline, prefetcher bounds.
//!
//! Offline build: no external property-testing framework; every case is
//! reproducible from the loop seed via the simulator's own [`Rng`].

use cohfree_fabric::{MsgKind, NodeId};
use cohfree_rmc::addr::{decode, encode, split, strip_prefix, RemoteRef};
use cohfree_rmc::{Prefetcher, PrefetcherConfig, RmcClient, RmcConfig, Submit};
use cohfree_sim::{Rng, SimDuration, SimTime};

const CASES: u64 = 64;

/// encode/split/strip round-trip for the whole prefix and offset space.
#[test]
fn addr_codec_round_trip() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xADD2 + seed);
        let home = NodeId::new(rng.range(1, 16_384) as u16);
        let offset = rng.below(1 << 34);
        let addr = encode(home, offset);
        let (p, o) = split(addr);
        assert_eq!(p, home.get(), "seed {seed}");
        assert_eq!(o, offset, "seed {seed}");
        assert_eq!(strip_prefix(addr), offset, "seed {seed}");
        // Decoding from any *other* node sees a remote reference.
        let me = NodeId::new(if home.get() == 1 { 2 } else { 1 });
        assert_eq!(
            decode(me, addr),
            RemoteRef::Remote { home, offset },
            "seed {seed}"
        );
        // Decoding from the home node itself sees loopback.
        assert_eq!(
            decode(home, addr),
            RemoteRef::Loopback { offset },
            "seed {seed}"
        );
    }
}

/// Prefix 0 is always local, whatever the offset.
#[test]
fn prefix_zero_is_local() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x10CA1 + seed);
        let me = rng.range(1, 16_384) as u16;
        let offset = rng.below(1 << 34);
        assert_eq!(
            decode(NodeId::new(me), offset),
            RemoteRef::Local { offset },
            "seed {seed}"
        );
    }
}

/// The client never tracks more in-flight transactions than its slots, tags
/// never repeat, and every response retires exactly one slot.
#[test]
fn client_slot_discipline() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x5107 + seed);
        let slots = rng.range(1, 8) as usize;
        let steps = rng.range(1, 200);
        let cfg = RmcConfig {
            request_slots: slots,
            ..RmcConfig::default()
        };
        let mut c = RmcClient::new(NodeId::new(1), cfg);
        let mut now = SimTime::ZERO;
        let mut outstanding: Vec<cohfree_fabric::Message> = Vec::new();
        let mut seen_tags = std::collections::HashSet::new();
        for _ in 0..steps {
            now += SimDuration::ns(10);
            if rng.chance(0.5) {
                match c.submit(now, NodeId::new(2), MsgKind::ReadReq { bytes: 64 }, 0) {
                    Submit::Accepted { msg, inject_at } => {
                        assert!(inject_at >= now, "seed {seed}");
                        assert!(seen_tags.insert(msg.tag), "seed {seed}: tag reuse");
                        outstanding.push(msg);
                    }
                    Submit::Nacked { retry_at } => {
                        assert_eq!(c.in_flight(), slots, "seed {seed}: NACK while slots free");
                        assert!(retry_at > now, "seed {seed}");
                    }
                }
            } else if let Some(msg) = outstanding.pop() {
                let before = c.in_flight();
                c.on_response(now, &msg.reply(MsgKind::ReadResp { bytes: 64 }));
                assert_eq!(c.in_flight(), before - 1, "seed {seed}");
            }
            assert!(c.in_flight() <= slots, "seed {seed}");
            assert_eq!(c.in_flight(), outstanding.len(), "seed {seed}");
        }
    }
}

/// The prefetch buffer never exceeds its capacity, and every buffer hit was
/// a previously filled line.
#[test]
fn prefetcher_buffer_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xB0FF + seed);
        let buffer_lines = rng.range(1, 16) as usize;
        let accesses = rng.range(1, 300);
        let cfg = PrefetcherConfig {
            buffer_lines,
            ..PrefetcherConfig::default()
        };
        let mut p = Prefetcher::new(cfg);
        let mut filled = std::collections::HashSet::new();
        for _ in 0..accesses {
            let addr = rng.below(10_000);
            let d = p.access(addr * 64);
            if d.buffer_hit {
                assert!(
                    filled.contains(&(addr * 64)),
                    "seed {seed}: hit on never-filled line"
                );
            }
            for l in d.issue {
                p.fill(l);
                filled.insert(l);
            }
        }
        assert!(p.buffer_hits() <= p.issued(), "seed {seed}");
    }
}

/// Strictly sequential streams eventually make almost every access a buffer
/// hit (steady-state coverage).
#[test]
fn sequential_stream_coverage() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x5E0 + seed);
        let start = rng.below(1_000_000);
        let len = rng.range(32, 200);
        let mut p = Prefetcher::new(PrefetcherConfig::default());
        let base = start * 64;
        let mut hits = 0u64;
        for i in 0..len {
            let d = p.access(base + i * 64);
            if d.buffer_hit {
                hits += 1;
            }
            for l in d.issue {
                p.fill(l);
            }
        }
        // After the 2-access training prefix, everything should hit.
        assert!(
            hits >= len - 3,
            "seed {seed}: only {hits} hits in {len} sequential accesses"
        );
    }
}
