#![warn(missing_docs)]

//! # cohfree-rmc — the Remote Memory Controller
//!
//! The paper's central hardware contribution: a HyperTransport I/O unit that
//! lets plain load/store instructions reach memory in other nodes with **no
//! software on the access path** and **no inter-node coherency traffic**.
//!
//! * [`addr`] — the 14-most-significant-bits node-prefix codec ("there is no
//!   node 0", so the RMC needs no translation tables),
//! * [`client`] — the requesting-side datapath: bounded request slots,
//!   FPGA-class per-message processing on a single front-end engine (shared
//!   by requests and responses — the root of the client-side bottleneck the
//!   paper measures in Fig. 7), NACK/retry arbitration with a wasted-cycles
//!   penalty,
//! * [`server`] — the home-side datapath: prefix strip, replay against the
//!   local memory controllers, response generation (the congestion point of
//!   Fig. 8),
//! * [`prefetch`] — a sequential stream prefetcher, the paper's "future
//!   work" extension, used by the `abl_prefetch` ablation.
//!
//! All components are pure state machines: they consume events and return
//! actions with explicit timestamps; the event loop in `cohfree-core` wires
//! them to the fabric and memory models.

pub mod addr;
pub mod client;
pub mod prefetch;
pub mod server;

pub use addr::{decode, encode, strip_prefix, RemoteRef};
pub use client::{Completion, RmcClient, Submit};
pub use prefetch::{Prefetcher, PrefetcherConfig};
pub use server::RmcServer;

use cohfree_sim::SimDuration;

/// Timing/sizing parameters for one RMC.
///
/// The client-side pass is several times heavier than the server-side one:
/// it bridges processor I/O semantics to HNC-HT, allocates/retires request
/// slots and matches tags, while the server side only strips the prefix and
/// replays the access. The paper's own measurements locate the bottleneck
/// in the *local* (client) RMC, and the asymmetry is what makes one client
/// saturate at about two cores while a memory server absorbs around a dozen
/// client threads before congesting (Figs. 7 and 8).
#[derive(Debug, Clone, Copy)]
pub struct RmcConfig {
    /// Client-side front-end occupancy per message (request out or
    /// response in). FPGA-class; see [`RmcConfig::asic`].
    pub proc_time: SimDuration,
    /// Server-side front-end occupancy per message.
    pub server_proc_time: SimDuration,
    /// Client request slots (in-flight transactions the RMC can track).
    /// The prototype's I/O-unit design tracked very few.
    pub request_slots: usize,
    /// How long a NACKed requester waits before re-offering.
    pub retry_interval: SimDuration,
    /// Loss-recovery timeout: if a transaction's response has not arrived
    /// this long after injection, the RMC retransmits the request. Only
    /// armed when the fabric is lossy (`FabricConfig::loss_rate > 0`).
    pub timeout: SimDuration,
}

impl Default for RmcConfig {
    fn default() -> Self {
        RmcConfig {
            proc_time: SimDuration::ns(300),
            server_proc_time: SimDuration::ns(50),
            request_slots: 3,
            retry_interval: SimDuration::ns(150),
            timeout: SimDuration::us(30),
        }
    }
}

impl RmcConfig {
    /// An optimistic ASIC-class RMC (for ablations): 4× faster front-ends,
    /// deeper queues — the paper's "improved implementations" scenario.
    pub fn asic() -> Self {
        RmcConfig {
            proc_time: SimDuration::ns(75),
            server_proc_time: SimDuration::ns(15),
            request_slots: 16,
            retry_interval: SimDuration::ns(50),
            timeout: SimDuration::us(30),
        }
    }
}
