//! Sequential stream prefetcher (the paper's "future work" extension).
//!
//! The conclusions of the paper name prefetching as the path to closing the
//! gap to local memory. This module implements a classic multi-stream
//! next-N-lines prefetcher that would sit in the client RMC:
//!
//! * it watches the demand-miss address stream,
//! * when it sees `train_threshold` consecutive ascending line accesses it
//!   establishes a *stream* and issues prefetches for the next
//!   [`PrefetcherConfig::degree`] lines,
//! * prefetched lines land in a small fully-associative buffer; a demand
//!   access that hits the buffer completes at buffer latency instead of
//!   paying the remote round trip.
//!
//! The state machine only *decides*; the owning backend issues the actual
//! fabric transactions and calls [`Prefetcher::fill`] when they return.

use cohfree_sim::stats::Counter;
use std::collections::VecDeque;

/// Prefetcher tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PrefetcherConfig {
    /// Cache-line size in bytes (must match the cache in front).
    pub line_bytes: u64,
    /// Consecutive ascending accesses required to establish a stream.
    pub train_threshold: u32,
    /// Lines fetched ahead once a stream is established.
    pub degree: u32,
    /// Capacity of the prefetch buffer in lines.
    pub buffer_lines: usize,
    /// Independent streams tracked.
    pub streams: usize,
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        PrefetcherConfig {
            line_bytes: 64,
            train_threshold: 2,
            degree: 4,
            buffer_lines: 32,
            streams: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Last line address observed in this stream.
    last_line: u64,
    /// Ascending hits observed so far.
    run: u32,
    /// Next line this stream would prefetch.
    next_prefetch: u64,
}

/// What the prefetcher decided about one demand access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The demand line was present in the prefetch buffer.
    pub buffer_hit: bool,
    /// Line addresses the backend should prefetch now.
    pub issue: Vec<u64>,
}

/// Multi-stream sequential prefetcher state.
#[derive(Debug)]
pub struct Prefetcher {
    cfg: PrefetcherConfig,
    streams: Vec<Stream>,
    /// FIFO of resident prefetched lines.
    buffer: VecDeque<u64>,
    /// Lines requested but not yet filled (avoid duplicate issues).
    pending: VecDeque<u64>,
    hits: Counter,
    issued: Counter,
    useless_evictions: Counter,
}

impl Prefetcher {
    /// A prefetcher with the given configuration.
    ///
    /// # Panics
    /// Panics if `line_bytes` is not a power of two or any capacity is zero.
    pub fn new(cfg: PrefetcherConfig) -> Prefetcher {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.buffer_lines > 0 && cfg.streams > 0 && cfg.degree > 0);
        Prefetcher {
            cfg,
            streams: Vec::with_capacity(cfg.streams),
            buffer: VecDeque::with_capacity(cfg.buffer_lines),
            pending: VecDeque::new(),
            hits: Counter::new(),
            issued: Counter::new(),
            useless_evictions: Counter::new(),
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes - 1)
    }

    /// Observe a demand access to `addr`; returns the hit/issue decision.
    pub fn access(&mut self, addr: u64) -> Decision {
        let line = self.line_of(addr);
        let buffer_hit = if let Some(pos) = self.buffer.iter().position(|&l| l == line) {
            self.buffer.remove(pos);
            self.hits.inc();
            true
        } else {
            false
        };

        let mut issue = Vec::new();
        // Train streams on the demand line.
        if let Some(si) = self
            .streams
            .iter()
            .position(|s| line == s.last_line + self.cfg.line_bytes || line == s.last_line)
        {
            let lb = self.cfg.line_bytes;
            let (threshold, degree) = (self.cfg.train_threshold, self.cfg.degree);
            let s = &mut self.streams[si];
            if line == s.last_line + lb {
                s.run += 1;
                s.last_line = line;
                if s.run >= threshold {
                    // Established: fetch ahead up to `degree` lines.
                    let horizon = line + lb * degree as u64;
                    let mut next = s.next_prefetch.max(line + lb);
                    while next <= horizon {
                        issue.push(next);
                        next += lb;
                    }
                    s.next_prefetch = next;
                }
            }
            // `line == last_line` (same-line re-access): no state change.
        } else {
            // New candidate stream; evict the stalest tracked stream.
            if self.streams.len() == self.cfg.streams {
                self.streams.remove(0);
            }
            self.streams.push(Stream {
                last_line: line,
                run: 1,
                next_prefetch: line + self.cfg.line_bytes,
            });
        }

        // De-duplicate against buffer contents and pending fills.
        issue.retain(|l| !self.buffer.contains(l) && !self.pending.contains(l));
        for &l in &issue {
            self.pending.push_back(l);
        }
        self.issued.add(issue.len() as u64);
        Decision { buffer_hit, issue }
    }

    /// A previously issued prefetch for `line` returned; place it in the
    /// buffer (evicting the oldest resident if full).
    pub fn fill(&mut self, line: u64) {
        if let Some(pos) = self.pending.iter().position(|&l| l == line) {
            self.pending.remove(pos);
        }
        if self.buffer.len() == self.cfg.buffer_lines {
            self.buffer.pop_front();
            self.useless_evictions.inc();
        }
        self.buffer.push_back(line);
    }

    /// Demand accesses satisfied by the buffer.
    pub fn buffer_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Prefetch transactions issued.
    pub fn issued(&self) -> u64 {
        self.issued.get()
    }

    /// Prefetched lines evicted without ever being used.
    pub fn useless_evictions(&self) -> u64 {
        self.useless_evictions.get()
    }

    /// Fraction of issued prefetches that were consumed by demand hits.
    pub fn accuracy(&self) -> f64 {
        if self.issued.get() == 0 {
            0.0
        } else {
            self.hits.get() as f64 / self.issued.get() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> Prefetcher {
        Prefetcher::new(PrefetcherConfig::default())
    }

    #[test]
    fn random_accesses_issue_nothing() {
        let mut p = pf();
        let mut rng = cohfree_sim::Rng::new(1);
        for _ in 0..100 {
            let d = p.access(rng.below(1 << 30) & !63);
            assert!(d.issue.is_empty(), "random stream must not train");
            assert!(!d.buffer_hit);
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn sequential_stream_trains_and_prefetches() {
        let mut p = pf();
        assert!(p.access(0).issue.is_empty()); // first touch
        let d = p.access(64); // run = 2 = threshold -> prefetch ahead
        assert_eq!(d.issue, vec![128, 192, 256, 320]);
    }

    #[test]
    fn buffer_hits_after_fill() {
        let mut p = pf();
        p.access(0);
        let d = p.access(64);
        for l in d.issue {
            p.fill(l);
        }
        let d = p.access(128);
        assert!(d.buffer_hit, "next sequential line should hit the buffer");
        assert_eq!(p.buffer_hits(), 1);
        assert!(p.accuracy() > 0.0);
    }

    #[test]
    fn no_duplicate_issues_for_pending_lines() {
        let mut p = pf();
        p.access(0);
        let first = p.access(64);
        assert!(!first.issue.is_empty());
        // Continue the stream before fills arrive; issued lines must not repeat.
        let second = p.access(128);
        for l in &second.issue {
            assert!(!first.issue.contains(l), "line {l} issued twice");
        }
    }

    #[test]
    fn buffer_capacity_bounded_with_fifo_eviction() {
        let cfg = PrefetcherConfig {
            buffer_lines: 2,
            ..PrefetcherConfig::default()
        };
        let mut p = Prefetcher::new(cfg);
        p.fill(0);
        p.fill(64);
        p.fill(128); // evicts 0
        assert_eq!(p.useless_evictions(), 1);
        assert!(!p.access(0).buffer_hit);
        assert!(p.access(64).buffer_hit);
    }

    #[test]
    fn tracks_multiple_streams() {
        let mut p = pf();
        // Interleave two sequential streams at distant bases.
        let base_a = 0u64;
        let base_b = 1 << 20;
        p.access(base_a);
        p.access(base_b);
        let da = p.access(base_a + 64);
        let db = p.access(base_b + 64);
        assert!(!da.issue.is_empty(), "stream A should train");
        assert!(!db.issue.is_empty(), "stream B should train");
    }

    #[test]
    fn stream_eviction_is_fifo_by_recency() {
        let cfg = PrefetcherConfig {
            streams: 1,
            ..PrefetcherConfig::default()
        };
        let mut p = Prefetcher::new(cfg);
        p.access(0);
        p.access(1 << 20); // evicts the first stream
                           // Continuing the first stream must restart training (one access
                           // gives run=1 < threshold, so no issue).
        let d = p.access(64);
        assert!(d.issue.is_empty());
    }

    #[test]
    fn same_line_reaccess_does_not_advance_stream() {
        let mut p = pf();
        p.access(0);
        p.access(0);
        p.access(0);
        let d = p.access(64);
        // run reaches threshold on the first ascending step.
        assert!(!d.issue.is_empty());
    }
}
