//! Server-side (home-node) RMC datapath.
//!
//! When a request message reaches the home node, its RMC (1) spends
//! front-end processing time, (2) clears the 14 prefix bits, and (3) replays
//! the access against a local memory controller by generating the
//! appropriate HyperTransport message. Once the memory controller responds,
//! the RMC spends front-end time again and injects the response into the
//! fabric. The single shared front-end engine is what congests in the
//! paper's Fig. 8 when many clients stress one memory server.

use crate::addr::strip_prefix;
use crate::RmcConfig;
use cohfree_fabric::{Message, MsgKind, NodeId};
use cohfree_sim::queueing::FifoServer;
use cohfree_sim::stats::{Counter, LatencyHistogram};
use cohfree_sim::{SimDuration, SimTime};

/// The RMC instruction to the home node's memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemIssue {
    /// Local (prefix-stripped) physical address to access.
    pub local_addr: u64,
    /// Bytes to transfer.
    pub bytes: u32,
    /// True for stores.
    pub is_write: bool,
    /// Instant the access may start (after front-end processing).
    pub issue_at: SimTime,
}

/// The server-side Remote Memory Controller of one node.
#[derive(Debug)]
pub struct RmcServer {
    cfg: RmcConfig,
    node: NodeId,
    engine: FifoServer,
    requests: Counter,
    probes: Counter,
    stalls: Counter,
    service: LatencyHistogram,
}

impl RmcServer {
    /// The RMC serving memory of `node`.
    pub fn new(node: NodeId, cfg: RmcConfig) -> RmcServer {
        RmcServer {
            cfg,
            node,
            engine: FifoServer::new(),
            requests: Counter::new(),
            probes: Counter::new(),
            stalls: Counter::new(),
            service: LatencyHistogram::new(),
        }
    }

    /// The node whose memory this RMC serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A request message arrived from the fabric at `now`; returns the local
    /// memory access to perform.
    ///
    /// # Panics
    /// Panics if the message is not addressed to this node, is a response,
    /// or is an OS-level message (those are handled by the kernel model, not
    /// the RMC datapath).
    pub fn on_request(&mut self, now: SimTime, msg: &Message) -> MemIssue {
        assert_eq!(msg.dst, self.node, "misrouted message at server RMC");
        let (bytes, is_write) = match msg.kind {
            MsgKind::ReadReq { bytes } => (bytes, false),
            MsgKind::WriteReq { bytes } => (bytes, true),
            MsgKind::PageReq { bytes } => (bytes, false),
            MsgKind::PageWrite { bytes } => (bytes, true),
            MsgKind::CohReadReq { bytes } => (bytes, false),
            other => panic!("server RMC datapath got {other:?}"),
        };
        self.requests.inc();
        let issue_at = self.engine.accept(now, self.cfg.server_proc_time);
        MemIssue {
            local_addr: strip_prefix(msg.addr),
            bytes,
            is_write,
            issue_at,
        }
    }

    /// The local memory access for `req` finished at `now`; returns the
    /// response message and the instant it enters the fabric.
    pub fn on_mem_done(
        &mut self,
        now: SimTime,
        req: &Message,
        arrived_at: SimTime,
    ) -> (Message, SimTime) {
        let resp_kind = match req.kind {
            MsgKind::ReadReq { bytes } | MsgKind::CohReadReq { bytes } => {
                MsgKind::ReadResp { bytes }
            }
            MsgKind::WriteReq { .. } => MsgKind::WriteAck,
            MsgKind::PageReq { bytes } => MsgKind::PageResp { bytes },
            MsgKind::PageWrite { .. } => MsgKind::PageWriteAck,
            other => panic!("server RMC completing non-memory message {other:?}"),
        };
        let inject_at = self.engine.accept(now, self.cfg.server_proc_time);
        self.service.record(inject_at.since(arrived_at));
        (req.reply(resp_kind), inject_at)
    }

    /// Handle a snoop probe from a coherent-DSM home node: the member RMC
    /// spends a front-end pass checking its node's caches and answers.
    /// Returns the response and its fabric-injection instant.
    ///
    /// This is the per-member tax of extending coherency across nodes: every
    /// miss **anywhere** in the domain costs **every** member a front-end
    /// pass — the scalability wall the paper's architecture removes.
    pub fn on_probe(&mut self, now: SimTime, msg: &Message) -> (Message, SimTime) {
        assert_eq!(msg.kind, MsgKind::ProbeReq, "on_probe expects a ProbeReq");
        assert_eq!(msg.dst, self.node, "misrouted probe");
        self.probes.inc();
        let inject_at = self.engine.accept(now, self.cfg.server_proc_time);
        (msg.reply(MsgKind::ProbeResp), inject_at)
    }

    /// A probe response arrived back at this (home) node: the front-end
    /// spends a pass collating it. Returns when that pass completes.
    pub fn on_probe_response(&mut self, now: SimTime) -> SimTime {
        self.engine.accept(now, self.cfg.server_proc_time)
    }

    /// Inject a fault: the front-end engine goes busy for `duration`
    /// starting at `now` (firmware hiccup, ECC scrub storm, thermal
    /// throttle). All queued and subsequently arriving work waits it out —
    /// clients see it as a latency spike, possibly long enough to trip
    /// their loss timers.
    pub fn stall(&mut self, now: SimTime, duration: SimDuration) {
        self.stalls.inc();
        self.engine.accept(now, duration);
    }

    /// Injected front-end stalls so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Snoop probes served so far (coherent-DSM baseline only).
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// Distribution of request residence time in this server (arrival to
    /// response injection).
    pub fn service_time(&self) -> &LatencyHistogram {
        &self.service
    }

    /// Front-end engine utilization over `[0, horizon]` — the congestion
    /// signal of Fig. 8.
    pub fn engine_utilization(&self, horizon: SimTime) -> f64 {
        self.engine.utilization(horizon)
    }

    /// Mean front-end queueing wait.
    pub fn mean_engine_wait(&self) -> cohfree_sim::SimDuration {
        self.engine.mean_wait()
    }

    /// Time-to-drain of the front-end engine's backlog as seen at `now`.
    pub fn engine_backlog(&self, now: SimTime) -> cohfree_sim::SimDuration {
        self.engine.backlog(now)
    }

    /// Serializable view of this server's counters, engine state and
    /// service-time distribution, with utilization computed against
    /// `horizon`.
    pub fn snapshot(&self, horizon: SimTime) -> cohfree_sim::Json {
        cohfree_sim::Json::obj([
            ("requests", self.requests.snapshot()),
            ("probes", self.probes.snapshot()),
            ("stalls", self.stalls.snapshot()),
            ("engine", self.engine.snapshot(horizon)),
            ("service", self.service.snapshot()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::encode;
    use cohfree_sim::SimDuration;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn server() -> RmcServer {
        RmcServer::new(n(3), RmcConfig::default())
    }

    fn read_req(addr: u64) -> Message {
        Message::with_addr(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 42, addr)
    }

    #[test]
    fn request_strips_prefix_and_pays_processing() {
        let mut s = server();
        let addr = encode(n(3), 0x4100_0000);
        let issue = s.on_request(SimTime::ZERO, &read_req(addr));
        assert_eq!(issue.local_addr, 0x4100_0000);
        assert_eq!(issue.bytes, 64);
        assert!(!issue.is_write);
        assert_eq!(
            issue.issue_at.since(SimTime::ZERO),
            RmcConfig::default().server_proc_time
        );
        assert_eq!(s.requests(), 1);
    }

    #[test]
    fn write_request_flagged() {
        let mut s = server();
        let addr = encode(n(3), 64);
        let msg = Message::with_addr(n(1), n(3), MsgKind::WriteReq { bytes: 64 }, 1, addr);
        let issue = s.on_request(SimTime::ZERO, &msg);
        assert!(issue.is_write);
    }

    #[test]
    fn completion_builds_matching_response() {
        let mut s = server();
        let req = read_req(encode(n(3), 128));
        let arrived = SimTime::ZERO;
        let issue = s.on_request(arrived, &req);
        let mem_done = issue.issue_at + SimDuration::ns(65);
        let (resp, inject_at) = s.on_mem_done(mem_done, &req, arrived);
        assert_eq!(resp.kind, MsgKind::ReadResp { bytes: 64 });
        assert_eq!(resp.src, n(3));
        assert_eq!(resp.dst, n(1));
        assert_eq!(resp.tag, req.tag);
        assert_eq!(inject_at, mem_done + RmcConfig::default().server_proc_time);
        assert_eq!(s.service_time().count(), 1);
    }

    #[test]
    fn page_messages_map_to_page_responses() {
        let mut s = server();
        let req = Message::with_addr(
            n(1),
            n(3),
            MsgKind::PageReq { bytes: 4096 },
            9,
            encode(n(3), 0x1000),
        );
        let issue = s.on_request(SimTime::ZERO, &req);
        assert_eq!(issue.bytes, 4096);
        let (resp, _) = s.on_mem_done(issue.issue_at, &req, SimTime::ZERO);
        assert_eq!(resp.kind, MsgKind::PageResp { bytes: 4096 });

        let wr = Message::with_addr(
            n(1),
            n(3),
            MsgKind::PageWrite { bytes: 4096 },
            10,
            encode(n(3), 0x2000),
        );
        let issue = s.on_request(SimTime::ZERO, &wr);
        assert!(issue.is_write);
        let (ack, _) = s.on_mem_done(issue.issue_at, &wr, SimTime::ZERO);
        assert_eq!(ack.kind, MsgKind::PageWriteAck);
    }

    #[test]
    fn back_to_back_requests_congest_the_engine() {
        let mut s = server();
        let proc = RmcConfig::default().server_proc_time;
        let a = s.on_request(SimTime::ZERO, &read_req(encode(n(3), 0)));
        let b = s.on_request(SimTime::ZERO, &read_req(encode(n(3), 64)));
        assert_eq!(a.issue_at.since(SimTime::ZERO), proc);
        assert_eq!(b.issue_at.since(SimTime::ZERO), proc * 2);
        assert!(s.mean_engine_wait() > SimDuration::ZERO);
    }

    #[test]
    fn stall_delays_subsequent_requests() {
        let mut s = server();
        let proc = RmcConfig::default().server_proc_time;
        let stall = SimDuration::us(5);
        s.stall(SimTime::ZERO, stall);
        assert_eq!(s.stalls(), 1);
        // A request arriving mid-stall queues behind the fault.
        let issue = s.on_request(
            SimTime::ZERO + SimDuration::ns(10),
            &read_req(encode(n(3), 0)),
        );
        assert_eq!(issue.issue_at, SimTime::ZERO + stall + proc);
    }

    #[test]
    #[should_panic(expected = "misrouted")]
    fn misrouted_message_panics() {
        let mut s = server();
        let msg = Message::with_addr(n(1), n(4), MsgKind::ReadReq { bytes: 64 }, 0, 0);
        s.on_request(SimTime::ZERO, &msg);
    }

    #[test]
    #[should_panic(expected = "server RMC datapath got")]
    fn os_message_rejected_by_datapath() {
        let mut s = server();
        let msg = Message::new(n(1), n(3), MsgKind::ResvReq { frames: 4 }, 0);
        s.on_request(SimTime::ZERO, &msg);
    }
}
