//! The node-prefix address codec.
//!
//! Section III-B of the paper: the 14 most-significant bits of a 48-bit
//! physical address name the home node of the data. Prefix 0 means "one of
//! my local memory controllers"; any other prefix routes the access to the
//! RMC, which forwards it to that node, where the receiving RMC **sets the
//! prefix to zero** and replays the access locally. Because node ids start
//! at 1, every node shares an identical memory-map conception and no RMC
//! needs a translation table.
//!
//! The codec also exposes the paper's *overlapped segment* quirk: node `k`
//! addressing prefix `k` would reach its own memory through the fabric
//! (loopback). The reservation protocol never produces such addresses, and
//! [`RemoteRef::expect_no_loopback`] lets callers assert that.

use cohfree_fabric::NodeId;
use cohfree_mem::map::{NODE_ADDR_BITS, NODE_WINDOW_BYTES};

/// A decoded physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteRef {
    /// Prefix 0: the address refers to the issuing node's local memory.
    Local {
        /// Node-local physical address.
        offset: u64,
    },
    /// Non-zero prefix naming another node.
    Remote {
        /// Node whose DRAM backs the address.
        home: NodeId,
        /// Physical address within the home node.
        offset: u64,
    },
    /// Non-zero prefix naming the issuing node itself — the overlapped
    /// "loopback" segment that correct reservations never produce.
    Loopback {
        /// Physical address within this node.
        offset: u64,
    },
}

/// Encode a home node and node-local offset into a prefixed physical address.
///
/// ```
/// use cohfree_fabric::NodeId;
/// use cohfree_rmc::addr::{encode, strip_prefix};
///
/// // The paper's Section III-B example: node 3's zone at 0x4100_0000.
/// let prefixed = encode(NodeId::new(3), 0x4100_0000);
/// assert_eq!(prefixed, (3 << 34) | 0x4100_0000);
/// assert_eq!(strip_prefix(prefixed), 0x4100_0000);
/// ```
///
/// # Panics
/// Panics if `offset` does not fit the per-node window (2^34 bytes).
pub fn encode(home: NodeId, offset: u64) -> u64 {
    assert!(
        offset < NODE_WINDOW_BYTES,
        "offset {offset:#x} exceeds the node window"
    );
    ((home.get() as u64) << NODE_ADDR_BITS) | offset
}

/// Split a prefixed address into `(prefix, offset)`; prefix 0 = local.
pub fn split(addr: u64) -> (u16, u64) {
    (
        (addr >> NODE_ADDR_BITS) as u16,
        addr & (NODE_WINDOW_BYTES - 1),
    )
}

/// Decode an address as seen by node `me`.
pub fn decode(me: NodeId, addr: u64) -> RemoteRef {
    let (prefix, offset) = split(addr);
    if prefix == 0 {
        RemoteRef::Local { offset }
    } else if prefix == me.get() {
        RemoteRef::Loopback { offset }
    } else {
        RemoteRef::Remote {
            home: NodeId::new(prefix),
            offset,
        }
    }
}

/// What the receiving RMC does on arrival: clear the 14 prefix bits,
/// yielding the home node's local physical address.
pub fn strip_prefix(addr: u64) -> u64 {
    addr & (NODE_WINDOW_BYTES - 1)
}

impl RemoteRef {
    /// The home node for a remote reference.
    pub fn home(self) -> Option<NodeId> {
        match self {
            RemoteRef::Remote { home, .. } => Some(home),
            _ => None,
        }
    }

    /// Classify, treating loopback as a protocol violation.
    ///
    /// # Panics
    /// Panics on [`RemoteRef::Loopback`] — the reservation mechanism
    /// guarantees this never happens in practice (Section III-B).
    pub fn expect_no_loopback(self) -> RemoteRef {
        assert!(
            !matches!(self, RemoteRef::Loopback { .. }),
            "loopback address observed: the reservation protocol must never map a \
             node's own memory through its RMC"
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn paper_worked_example() {
        // Section III-B: node 3 reserves locally at 0x0000_4100_0000 and
        // returns the prefixed form; node 1 later issues the prefixed
        // address and node 3's RMC strips it back.
        let local = 0x0000_4100_0000u64;
        let prefixed = encode(n(3), local);
        assert_eq!(prefixed, (3u64 << 34) | local);
        assert_eq!(strip_prefix(prefixed), local);
        match decode(n(1), prefixed) {
            RemoteRef::Remote { home, offset } => {
                assert_eq!(home, n(3));
                assert_eq!(offset, local);
            }
            other => panic!("expected remote, got {other:?}"),
        }
    }

    #[test]
    fn prefix_zero_is_local() {
        assert_eq!(decode(n(1), 0x1234), RemoteRef::Local { offset: 0x1234 });
        assert_eq!(
            decode(n(1), NODE_WINDOW_BYTES - 1),
            RemoteRef::Local {
                offset: NODE_WINDOW_BYTES - 1
            }
        );
    }

    #[test]
    fn loopback_detected() {
        let addr = encode(n(5), 0x42);
        assert_eq!(decode(n(5), addr), RemoteRef::Loopback { offset: 0x42 });
        assert_eq!(
            decode(n(6), addr),
            RemoteRef::Remote {
                home: n(5),
                offset: 0x42
            }
        );
    }

    #[test]
    #[should_panic(expected = "loopback address observed")]
    fn loopback_guard_fires() {
        decode(n(5), encode(n(5), 0)).expect_no_loopback();
    }

    #[test]
    fn round_trip_random() {
        let mut rng = cohfree_sim::Rng::new(99);
        for _ in 0..1_000 {
            let home = n(rng.range(1, 16384) as u16);
            let offset = rng.below(NODE_WINDOW_BYTES);
            let addr = encode(home, offset);
            let (p, o) = split(addr);
            assert_eq!(p, home.get());
            assert_eq!(o, offset);
            assert_eq!(strip_prefix(addr), offset);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the node window")]
    fn oversized_offset_rejected() {
        encode(n(1), NODE_WINDOW_BYTES);
    }

    #[test]
    fn home_accessor() {
        assert_eq!(decode(n(1), encode(n(2), 0)).home(), Some(n(2)));
        assert_eq!(decode(n(1), 0).home(), None);
    }
}
