//! Client-side RMC datapath.
//!
//! The requesting node's RMC accepts load/store transactions whose address
//! carries a non-zero node prefix, turns each into a fabric message, and
//! matches responses back to the issuing core by tag.
//!
//! Two properties of the prototype are modelled faithfully because the
//! paper's Fig. 7 and Fig. 8 hinge on them:
//!
//! 1. **A single front-end engine** processes *both* outgoing requests and
//!    incoming responses, each costing [`crate::RmcConfig::proc_time`]. A
//!    read transaction therefore consumes two engine passes at the client —
//!    which is why the client RMC saturates at roughly the demand of two
//!    cores, and why a saturated client is *insensitive to server distance*
//!    (Fig. 7's counter-intuitive right-hand group: throughput is pinned by
//!    the engine, not the path).
//! 2. **Bounded request slots** with NACK/retry arbitration: an offer made
//!    while all slots are held is rejected and the core must re-offer after
//!    [`crate::RmcConfig::retry_interval`].

use crate::RmcConfig;
use cohfree_fabric::{Message, MsgKind, NodeId};
use cohfree_sim::queueing::FifoServer;
use cohfree_sim::stats::{Counter, LatencyHistogram};
use cohfree_sim::{FastSet, SimDuration, SimTime};

/// Outcome of offering a transaction to the client RMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// Accepted: inject `msg` into the fabric at `inject_at`.
    Accepted {
        /// The fabric message to inject.
        msg: Message,
        /// Instant the message enters the fabric.
        inject_at: SimTime,
    },
    /// All request slots busy; re-offer no earlier than `retry_at`.
    Nacked {
        /// Earliest instant to re-offer.
        retry_at: SimTime,
    },
}

/// A completed transaction, reported when the response has been processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Tag of the original request.
    pub tag: u64,
    /// Instant the issuing core observes completion.
    pub done_at: SimTime,
    /// End-to-end latency from submission to completion.
    pub latency: SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    submitted_at: SimTime,
}

/// The client-side Remote Memory Controller of one node.
#[derive(Debug)]
pub struct RmcClient {
    cfg: RmcConfig,
    node: NodeId,
    engine: FifoServer,
    /// Pending transactions as `(tag, info)` pairs. The slot count is tiny
    /// (the prototype arbitration bound), so a linear scan over a flat
    /// vector beats a hash map and allocates nothing per transaction after
    /// the first few submissions.
    in_flight: Vec<(u64, InFlight)>,
    next_tag: u64,
    nacks: Counter,
    reads: Counter,
    writes: Counter,
    completions: Counter,
    retransmissions: Counter,
    duplicates: Counter,
    aborted: Counter,
    suspects: FastSet<NodeId>,
    /// Destinations the recovery manager has load-shed: the OS defers (or
    /// fails) new accesses to them until re-admission. Mutated only by
    /// global manager events, read by lane code — the same partition-safety
    /// contract as `suspects`.
    shed: FastSet<NodeId>,
    shed_deferrals: Counter,
    latency: LatencyHistogram,
}

impl RmcClient {
    /// The RMC installed in `node`.
    ///
    /// Tags issued by this client are made globally unique by folding the
    /// node id into the high bits, so responses arriving at a shared
    /// dispatcher can never collide across nodes.
    pub fn new(node: NodeId, cfg: RmcConfig) -> RmcClient {
        RmcClient {
            cfg,
            node,
            engine: FifoServer::new(),
            in_flight: Vec::new(),
            next_tag: (node.get() as u64) << 48,
            nacks: Counter::new(),
            reads: Counter::new(),
            writes: Counter::new(),
            completions: Counter::new(),
            retransmissions: Counter::new(),
            duplicates: Counter::new(),
            aborted: Counter::new(),
            suspects: FastSet::default(),
            shed: FastSet::default(),
            shed_deferrals: Counter::new(),
            latency: LatencyHistogram::new(),
        }
    }

    /// The node this RMC lives in.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Offer a transaction at `now`: a `kind` access to prefixed physical
    /// address `addr` homed at `dst`.
    ///
    /// # Panics
    /// Panics if `dst` is this node — loopback traffic indicates a broken
    /// reservation (see [`crate::addr`]).
    pub fn submit(&mut self, now: SimTime, dst: NodeId, kind: MsgKind, addr: u64) -> Submit {
        assert_ne!(
            dst, self.node,
            "client RMC asked to reach its own node (loopback)"
        );
        if self.in_flight.len() >= self.cfg.request_slots {
            self.nacks.inc();
            return Submit::Nacked {
                retry_at: now + self.cfg.retry_interval,
            };
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        self.in_flight.push((tag, InFlight { submitted_at: now }));
        match kind {
            MsgKind::ReadReq { .. } | MsgKind::PageReq { .. } | MsgKind::CohReadReq { .. } => {
                self.reads.inc()
            }
            MsgKind::WriteReq { .. } | MsgKind::PageWrite { .. } => self.writes.inc(),
            _ => {}
        }
        let inject_at = self.engine.accept(now, self.cfg.proc_time);
        Submit::Accepted {
            msg: Message::with_addr(self.node, dst, kind, tag, addr),
            inject_at,
        }
    }

    /// A response message arrived from the fabric at `now`.
    ///
    /// Returns `None` for a duplicate response — possible under loss
    /// recovery, when a retransmitted request races a response that was
    /// merely slow (the engine still spends a processing pass discarding
    /// it, as real hardware would).
    ///
    /// # Panics
    /// Panics if the message is not a response kind.
    pub fn on_response(&mut self, now: SimTime, msg: &Message) -> Option<Completion> {
        assert!(
            msg.kind.is_response(),
            "client RMC received non-response {:?}",
            msg.kind
        );
        let Some(idx) = self.in_flight.iter().position(|&(t, _)| t == msg.tag) else {
            self.duplicates.inc();
            self.engine.accept(now, self.cfg.proc_time);
            return None;
        };
        let (_, info) = self.in_flight.swap_remove(idx);
        let done_at = self.engine.accept(now, self.cfg.proc_time);
        let latency = done_at.since(info.submitted_at);
        self.completions.inc();
        self.latency.record(latency);
        Some(Completion {
            tag: msg.tag,
            done_at,
            latency,
        })
    }

    /// Retransmit a still-pending request after a loss-recovery timeout:
    /// the engine spends a processing pass rebuilding the packet; the
    /// original slot and tag stay allocated. Returns the re-injection time.
    ///
    /// # Panics
    /// Panics if `tag` is not in flight (completed transactions must not be
    /// retransmitted — the caller checks first).
    pub fn retransmit(&mut self, now: SimTime, tag: u64) -> SimTime {
        assert!(
            self.is_pending(tag),
            "retransmit of non-pending tag {tag:#x}"
        );
        self.retransmissions.inc();
        self.engine.accept(now, self.cfg.proc_time)
    }

    /// Abort a pending transaction: the retry budget to its home node is
    /// exhausted and failure detection has given up on it. Frees the slot
    /// without a completion; a response that arrives later is discarded as
    /// a duplicate. Returns `true` if the tag was pending.
    pub fn abort(&mut self, tag: u64) -> bool {
        if let Some(idx) = self.in_flight.iter().position(|&(t, _)| t == tag) {
            self.in_flight.swap_remove(idx);
            self.aborted.inc();
            true
        } else {
            false
        }
    }

    /// Mark `node` as suspect after exhausting the retry budget; the OS
    /// fails accesses to it fast instead of burning retransmissions.
    pub fn mark_suspect(&mut self, node: NodeId) {
        self.suspects.insert(node);
    }

    /// Clear a suspicion (the node restarted).
    pub fn clear_suspect(&mut self, node: NodeId) {
        self.suspects.remove(&node);
    }

    /// True if `node` is currently declared suspect by this client.
    pub fn is_suspect(&self, node: NodeId) -> bool {
        self.suspects.contains(&node)
    }

    /// Admission control: shed new accesses targeting `node` until
    /// [`RmcClient::clear_shed`].
    pub fn set_shed(&mut self, node: NodeId) {
        self.shed.insert(node);
    }

    /// Re-admit accesses targeting `node` (pressure cleared the hysteresis
    /// low watermark).
    pub fn clear_shed(&mut self, node: NodeId) {
        self.shed.remove(&node);
    }

    /// True if accesses to `node` are currently load-shed.
    pub fn is_shed(&self, node: NodeId) -> bool {
        self.shed.contains(&node)
    }

    /// Record one access deferred by admission control.
    pub fn note_shed_deferral(&mut self) {
        self.shed_deferrals.add(1);
    }

    /// Accesses deferred by admission control so far.
    pub fn shed_deferrals(&self) -> u64 {
        self.shed_deferrals.get()
    }

    /// Transactions aborted by failure detection so far.
    pub fn aborted(&self) -> u64 {
        self.aborted.get()
    }

    /// True if `tag` is still awaiting its response.
    pub fn is_pending(&self, tag: u64) -> bool {
        self.in_flight.iter().any(|&(t, _)| t == tag)
    }

    /// Transactions currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// NACKed offers so far.
    pub fn nacks(&self) -> u64 {
        self.nacks.get()
    }

    /// Completed transactions so far.
    pub fn completions(&self) -> u64 {
        self.completions.get()
    }

    /// Loss-recovery retransmissions so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions.get()
    }

    /// Duplicate responses discarded so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates.get()
    }

    /// Read-class submissions so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Write-class submissions so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// End-to-end transaction latency distribution.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Front-end engine utilization over `[0, horizon]`.
    pub fn engine_utilization(&self, horizon: SimTime) -> f64 {
        self.engine.utilization(horizon)
    }

    /// Time-to-drain of the front-end engine's backlog as seen at `now`.
    pub fn engine_backlog(&self, now: SimTime) -> SimDuration {
        self.engine.backlog(now)
    }

    /// Serializable view of this client's counters, engine state and
    /// latency distribution, with utilization computed against `horizon`.
    pub fn snapshot(&self, horizon: SimTime) -> cohfree_sim::Json {
        cohfree_sim::Json::obj([
            ("reads", self.reads.snapshot()),
            ("writes", self.writes.snapshot()),
            ("completions", self.completions.snapshot()),
            ("nacks", self.nacks.snapshot()),
            ("retransmissions", self.retransmissions.snapshot()),
            ("duplicates", self.duplicates.snapshot()),
            ("aborted", self.aborted.snapshot()),
            ("suspects", cohfree_sim::Json::from(self.suspects.len())),
            ("shed_targets", cohfree_sim::Json::from(self.shed.len())),
            ("shed_deferrals", self.shed_deferrals.snapshot()),
            ("in_flight", cohfree_sim::Json::from(self.in_flight.len())),
            ("engine", self.engine.snapshot(horizon)),
            ("latency", self.latency.snapshot()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn client() -> RmcClient {
        RmcClient::new(n(1), RmcConfig::default())
    }

    fn read64() -> MsgKind {
        MsgKind::ReadReq { bytes: 64 }
    }

    #[test]
    fn accepted_request_pays_processing_time() {
        let mut c = client();
        match c.submit(SimTime::ZERO, n(2), read64(), 123) {
            Submit::Accepted { msg, inject_at } => {
                assert_eq!(msg.src, n(1));
                assert_eq!(msg.dst, n(2));
                assert_eq!(msg.addr, 123);
                assert_eq!(
                    inject_at.since(SimTime::ZERO),
                    RmcConfig::default().proc_time
                );
            }
            Submit::Nacked { .. } => panic!("idle RMC must accept"),
        }
        assert_eq!(c.in_flight(), 1);
        assert_eq!(c.reads(), 1);
    }

    #[test]
    fn tags_are_unique_and_node_scoped() {
        let mut c1 = RmcClient::new(n(1), RmcConfig::default());
        let mut c2 = RmcClient::new(n(2), RmcConfig::default());
        let m1 = match c1.submit(SimTime::ZERO, n(3), read64(), 0) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        let m2 = match c2.submit(SimTime::ZERO, n(3), read64(), 0) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        assert_ne!(m1.tag, m2.tag);
        assert_eq!(m1.tag >> 48, 1);
        assert_eq!(m2.tag >> 48, 2);
    }

    #[test]
    fn full_slots_nack_with_retry_hint() {
        let cfg = RmcConfig {
            request_slots: 2,
            ..RmcConfig::default()
        };
        let mut c = RmcClient::new(n(1), cfg);
        c.submit(SimTime::ZERO, n(2), read64(), 0);
        c.submit(SimTime::ZERO, n(2), read64(), 64);
        match c.submit(SimTime::ZERO, n(2), read64(), 128) {
            Submit::Nacked { retry_at } => {
                assert_eq!(retry_at.since(SimTime::ZERO), cfg.retry_interval);
            }
            Submit::Accepted { .. } => panic!("third offer must NACK"),
        }
        assert_eq!(c.nacks(), 1);
        assert_eq!(c.in_flight(), 2);
    }

    #[test]
    fn nacks_do_not_consume_engine_time() {
        // An arbitration reject happens at the bus interface; the engine
        // must stay available for in-flight work.
        let cfg = RmcConfig {
            request_slots: 1,
            ..RmcConfig::default()
        };
        let mut c = RmcClient::new(n(1), cfg);
        c.submit(SimTime::ZERO, n(2), read64(), 0);
        let horizon = SimTime::ZERO + SimDuration::us(2);
        let before = c.engine_utilization(horizon);
        for _ in 0..10 {
            c.submit(SimTime::ZERO, n(2), read64(), 0);
        }
        assert_eq!(c.engine_utilization(horizon), before);
        assert_eq!(c.nacks(), 10);
    }

    #[test]
    fn response_completes_and_measures_latency() {
        let mut c = client();
        let msg = match c.submit(SimTime::ZERO, n(2), read64(), 77) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        let resp = msg.reply(MsgKind::ReadResp { bytes: 64 });
        let arrive = SimTime::ZERO + SimDuration::ns(1_000);
        let done = c
            .on_response(arrive, &resp)
            .expect("first response completes");
        assert_eq!(done.tag, msg.tag);
        assert_eq!(done.done_at, arrive + RmcConfig::default().proc_time);
        assert_eq!(done.latency, done.done_at.since(SimTime::ZERO));
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.completions(), 1);
        assert_eq!(c.latency().count(), 1);
    }

    #[test]
    fn request_and_response_share_the_engine() {
        // Submit a request, then deliver a response for it at the same
        // instant a second request is submitted: the two must serialize on
        // the single front-end engine.
        let mut c = client();
        let proc = RmcConfig::default().proc_time;
        let m1 = match c.submit(SimTime::ZERO, n(2), read64(), 0) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        let t = SimTime::ZERO + SimDuration::us(1);
        let done = c
            .on_response(t, &m1.reply(MsgKind::ReadResp { bytes: 64 }))
            .expect("completes");
        let second = c.submit(t, n(2), read64(), 64);
        match second {
            Submit::Accepted { inject_at, .. } => {
                assert_eq!(inject_at, done.done_at + proc, "must queue behind response");
            }
            _ => panic!("slot is free, must accept"),
        }
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_submission_panics() {
        client().submit(SimTime::ZERO, n(1), read64(), 0);
    }

    #[test]
    fn duplicate_response_is_discarded_not_fatal() {
        let mut c = client();
        let msg = match c.submit(SimTime::ZERO, n(2), read64(), 0) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        let resp = msg.reply(MsgKind::ReadResp { bytes: 64 });
        let t = SimTime::ZERO + SimDuration::us(1);
        assert!(c.on_response(t, &resp).is_some());
        // The same response arrives again (loss-recovery race).
        assert!(c.on_response(t + SimDuration::us(1), &resp).is_none());
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.completions(), 1);
    }

    #[test]
    fn retransmit_keeps_slot_and_counts() {
        let mut c = client();
        let msg = match c.submit(SimTime::ZERO, n(2), read64(), 0) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        assert!(c.is_pending(msg.tag));
        let t = SimTime::ZERO + SimDuration::us(30);
        let reinject = c.retransmit(t, msg.tag);
        assert!(reinject >= t + RmcConfig::default().proc_time);
        assert_eq!(c.retransmissions(), 1);
        assert_eq!(c.in_flight(), 1, "slot stays allocated");
        // The (late) response still completes it.
        assert!(c
            .on_response(
                t + SimDuration::us(5),
                &msg.reply(MsgKind::ReadResp { bytes: 64 })
            )
            .is_some());
        assert!(!c.is_pending(msg.tag));
    }

    #[test]
    #[should_panic(expected = "non-pending tag")]
    fn retransmit_of_completed_tag_panics() {
        let mut c = client();
        let msg = match c.submit(SimTime::ZERO, n(2), read64(), 0) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        c.on_response(
            SimTime::ZERO + SimDuration::us(1),
            &msg.reply(MsgKind::ReadResp { bytes: 64 }),
        );
        c.retransmit(SimTime::ZERO + SimDuration::us(2), msg.tag);
    }

    #[test]
    fn abort_frees_slot_and_late_response_is_duplicate() {
        let cfg = RmcConfig {
            request_slots: 1,
            ..RmcConfig::default()
        };
        let mut c = RmcClient::new(n(1), cfg);
        let m = match c.submit(SimTime::ZERO, n(2), read64(), 0) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        assert!(c.abort(m.tag));
        assert!(!c.is_pending(m.tag));
        assert_eq!(c.aborted(), 1);
        assert_eq!(c.in_flight(), 0, "abort releases the slot");
        // Aborting twice is a no-op.
        assert!(!c.abort(m.tag));
        assert_eq!(c.aborted(), 1);
        // A straggler response for the aborted tag is discarded, not fatal.
        let t = SimTime::ZERO + SimDuration::us(50);
        assert!(c
            .on_response(t, &m.reply(MsgKind::ReadResp { bytes: 64 }))
            .is_none());
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.completions(), 0);
        // The freed slot accepts new work.
        assert!(matches!(
            c.submit(t, n(2), read64(), 0),
            Submit::Accepted { .. }
        ));
    }

    #[test]
    fn suspects_are_marked_and_cleared() {
        let mut c = client();
        assert!(!c.is_suspect(n(2)));
        c.mark_suspect(n(2));
        assert!(c.is_suspect(n(2)));
        assert!(!c.is_suspect(n(3)));
        c.clear_suspect(n(2));
        assert!(!c.is_suspect(n(2)));
    }

    #[test]
    fn shed_targets_are_set_and_cleared_independently_of_suspicion() {
        let mut c = client();
        assert!(!c.is_shed(n(2)));
        c.set_shed(n(2));
        assert!(c.is_shed(n(2)));
        assert!(!c.is_suspect(n(2)), "shedding is not suspicion");
        assert!(!c.is_shed(n(3)));
        c.note_shed_deferral();
        c.note_shed_deferral();
        assert_eq!(c.shed_deferrals(), 2);
        c.clear_shed(n(2));
        assert!(!c.is_shed(n(2)));
    }

    #[test]
    fn slot_frees_after_completion() {
        let cfg = RmcConfig {
            request_slots: 1,
            ..RmcConfig::default()
        };
        let mut c = RmcClient::new(n(1), cfg);
        let m = match c.submit(SimTime::ZERO, n(2), read64(), 0) {
            Submit::Accepted { msg, .. } => msg,
            _ => unreachable!(),
        };
        assert!(matches!(
            c.submit(SimTime::ZERO, n(2), read64(), 0),
            Submit::Nacked { .. }
        ));
        let t = SimTime::ZERO + SimDuration::us(1);
        c.on_response(t, &m.reply(MsgKind::ReadResp { bytes: 64 }));
        assert!(matches!(
            c.submit(t, n(2), read64(), 0),
            Submit::Accepted { .. }
        ));
    }
}
