//! Seeded randomized tests for topologies, routing and the fabric model.
//!
//! Offline build: no external property-testing framework; every case is
//! reproducible from the loop seed via the simulator's own [`Rng`].

use cohfree_fabric::{Fabric, FabricConfig, Message, MsgKind, NodeId, Step, Topology};
use cohfree_sim::{Rng, SimTime};

const CASES: u64 = 96;

fn arb_grid_topology(rng: &mut Rng) -> Topology {
    let w = rng.range(2, 6) as u16;
    let h = rng.range(2, 6) as u16;
    if rng.chance(0.5) {
        Topology::Torus2D {
            width: w,
            height: h,
        }
    } else {
        Topology::Mesh2D {
            width: w,
            height: h,
        }
    }
}

fn arb_topology(rng: &mut Rng) -> Topology {
    match rng.below(3) {
        0 => arb_grid_topology(rng),
        1 => Topology::Ring {
            nodes: rng.range(2, 20) as u16,
        },
        _ => Topology::FullyConnected {
            nodes: rng.range(2, 20) as u16,
        },
    }
}

/// Routes exist between every pair, are loop-free, and their length equals
/// the advertised hop count.
#[test]
fn routes_are_minimal_and_loop_free() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x4071E5 + seed);
        let topo = arb_topology(&mut rng);
        let n = topo.num_nodes();
        let a = NodeId::new(rng.below(n as u64) as u16 + 1);
        let b = NodeId::new(rng.below(n as u64) as u16 + 1);
        if a == b {
            continue;
        }
        let route = topo.route(a, b);
        assert_eq!(route.len() as u32, topo.hops(a, b), "seed {seed}");
        assert_eq!(*route.last().unwrap(), b, "seed {seed}");
        // Loop-free: no node repeats.
        let mut seen = std::collections::HashSet::new();
        seen.insert(a);
        for &hop in &route {
            assert!(seen.insert(hop), "seed {seed}: route revisits {hop}");
        }
        // Every step follows a physical link.
        let links: std::collections::HashSet<_> = topo.links().into_iter().collect();
        let mut prev = a;
        for &hop in &route {
            assert!(
                links.contains(&(prev, hop)),
                "seed {seed}: no link {prev}->{hop}"
            );
            prev = hop;
        }
    }
}

/// Grid hop counts are symmetric (mesh and torus links are bidirectional).
#[test]
fn grid_hops_symmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x5E1 + seed);
        let topo = arb_grid_topology(&mut rng);
        let n = topo.num_nodes();
        let a = NodeId::new(rng.below(n as u64) as u16 + 1);
        let b = NodeId::new(rng.below(n as u64) as u16 + 1);
        assert_eq!(topo.hops(a, b), topo.hops(b, a), "seed {seed}");
    }
}

/// Torus never routes longer than the mesh of the same dimensions.
#[test]
fn torus_no_worse_than_mesh() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x7045 + seed);
        let w = rng.range(2, 6) as u16;
        let h = rng.range(2, 6) as u16;
        let mesh = Topology::Mesh2D {
            width: w,
            height: h,
        };
        let torus = Topology::Torus2D {
            width: w,
            height: h,
        };
        let n = mesh.num_nodes();
        let a = NodeId::new(rng.below(n as u64) as u16 + 1);
        let b = NodeId::new(rng.below(n as u64) as u16 + 1);
        assert!(torus.hops(a, b) <= mesh.hops(a, b), "seed {seed}");
    }
}

/// Walking a message through an idle fabric delivers it in exactly `hops`
/// steps at the unloaded latency.
#[test]
fn idle_fabric_delivery_matches_model() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x1D1E + seed);
        let topo = arb_grid_topology(&mut rng);
        let n = topo.num_nodes();
        let a = NodeId::new(rng.below(n as u64) as u16 + 1);
        let b = NodeId::new(rng.below(n as u64) as u16 + 1);
        if a == b {
            continue;
        }
        let bytes = rng.range(1, 4096) as u32;
        let mut fabric = Fabric::new(topo, FabricConfig::default());
        let msg = Message::new(a, b, MsgKind::ReadResp { bytes }, 1);
        let mut at = a;
        let mut now = SimTime::ZERO;
        let mut steps = 0;
        let deliver = loop {
            match fabric.step(now, at, &msg) {
                Step::Deliver { at: t } => break t,
                Step::Forward { next, arrive } => {
                    at = next;
                    now = arrive;
                    steps += 1;
                }
                Step::Dropped => unreachable!("lossless fabric dropped"),
            }
        };
        assert_eq!(steps, topo.hops(a, b), "seed {seed}");
        let expect = fabric.unloaded_latency(msg.wire_bytes(), steps);
        assert_eq!(deliver, SimTime::ZERO + expect, "seed {seed}");
    }
}

/// nodes_at_distance partitions all other nodes.
#[test]
fn distance_classes_partition() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xD157 + seed);
        let topo = arb_topology(&mut rng);
        let n = topo.num_nodes();
        let from = NodeId::new(rng.below(n as u64) as u16 + 1);
        let mut seen = std::collections::HashSet::new();
        for d in 1..=(2 * n as u32) {
            for node in topo.nodes_at_distance(from, d) {
                assert!(
                    seen.insert(node),
                    "seed {seed}: {node} in two distance classes"
                );
            }
        }
        assert_eq!(seen.len(), n as usize - 1, "seed {seed}");
    }
}
