//! Property-based tests for topologies, routing and the fabric model.

use cohfree_fabric::{Fabric, FabricConfig, Message, MsgKind, NodeId, Step, Topology};
use cohfree_sim::SimTime;
use proptest::prelude::*;

fn arb_grid_topology() -> impl Strategy<Value = Topology> {
    (2u16..6, 2u16..6, prop::bool::ANY).prop_map(|(w, h, torus)| {
        if torus {
            Topology::Torus2D {
                width: w,
                height: h,
            }
        } else {
            Topology::Mesh2D {
                width: w,
                height: h,
            }
        }
    })
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        arb_grid_topology(),
        (2u16..20).prop_map(|n| Topology::Ring { nodes: n }),
        (2u16..20).prop_map(|n| Topology::FullyConnected { nodes: n }),
    ]
}

proptest! {
    /// Routes exist between every pair, are loop-free, and their length
    /// equals the advertised hop count.
    #[test]
    fn routes_are_minimal_and_loop_free(topo in arb_topology(), a_raw: u16, b_raw: u16) {
        let n = topo.num_nodes();
        let a = NodeId::new(a_raw % n + 1);
        let b = NodeId::new(b_raw % n + 1);
        prop_assume!(a != b);
        let route = topo.route(a, b);
        prop_assert_eq!(route.len() as u32, topo.hops(a, b));
        prop_assert_eq!(*route.last().unwrap(), b);
        // Loop-free: no node repeats.
        let mut seen = std::collections::HashSet::new();
        seen.insert(a);
        for &hop in &route {
            prop_assert!(seen.insert(hop), "route revisits {hop}");
        }
        // Every step follows a physical link.
        let links: std::collections::HashSet<_> = topo.links().into_iter().collect();
        let mut prev = a;
        for &hop in &route {
            prop_assert!(links.contains(&(prev, hop)), "no link {prev}->{hop}");
            prev = hop;
        }
    }

    /// Grid hop counts are symmetric (mesh and torus links are bidirectional).
    #[test]
    fn grid_hops_symmetric(topo in arb_grid_topology(), a_raw: u16, b_raw: u16) {
        let n = topo.num_nodes();
        let a = NodeId::new(a_raw % n + 1);
        let b = NodeId::new(b_raw % n + 1);
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
    }

    /// Torus never routes longer than the mesh of the same dimensions.
    #[test]
    fn torus_no_worse_than_mesh(w in 2u16..6, h in 2u16..6, a_raw: u16, b_raw: u16) {
        let mesh = Topology::Mesh2D { width: w, height: h };
        let torus = Topology::Torus2D { width: w, height: h };
        let n = mesh.num_nodes();
        let a = NodeId::new(a_raw % n + 1);
        let b = NodeId::new(b_raw % n + 1);
        prop_assert!(torus.hops(a, b) <= mesh.hops(a, b));
    }

    /// Walking a message through an idle fabric delivers it in exactly
    /// `hops` steps at the unloaded latency.
    #[test]
    fn idle_fabric_delivery_matches_model(
        topo in arb_grid_topology(),
        a_raw: u16,
        b_raw: u16,
        bytes in 1u32..4096,
    ) {
        let n = topo.num_nodes();
        let a = NodeId::new(a_raw % n + 1);
        let b = NodeId::new(b_raw % n + 1);
        prop_assume!(a != b);
        let mut fabric = Fabric::new(topo, FabricConfig::default());
        let msg = Message::new(a, b, MsgKind::ReadResp { bytes }, 1);
        let mut at = a;
        let mut now = SimTime::ZERO;
        let mut steps = 0;
        let deliver = loop {
            match fabric.step(now, at, &msg) {
                Step::Deliver { at: t } => break t,
                Step::Forward { next, arrive } => {
                    at = next;
                    now = arrive;
                    steps += 1;
                }
                Step::Dropped => unreachable!("lossless fabric dropped"),
            }
        };
        prop_assert_eq!(steps, topo.hops(a, b));
        let expect = fabric.unloaded_latency(msg.wire_bytes(), steps);
        prop_assert_eq!(deliver, SimTime::ZERO + expect);
    }

    /// nodes_at_distance partitions all other nodes.
    #[test]
    fn distance_classes_partition(topo in arb_topology(), from_raw: u16) {
        let n = topo.num_nodes();
        let from = NodeId::new(from_raw % n + 1);
        let mut seen = std::collections::HashSet::new();
        for d in 1..=(2 * n as u32) {
            for node in topo.nodes_at_distance(from, d) {
                prop_assert!(seen.insert(node), "{node} in two distance classes");
            }
        }
        prop_assert_eq!(seen.len(), n as usize - 1);
    }
}
