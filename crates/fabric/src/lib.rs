#![warn(missing_docs)]

//! # cohfree-fabric — HyperTransport / HNC-HT interconnect model
//!
//! Models the inter-node fabric of the CLUSTER 2010 prototype: 16 nodes whose
//! FPGA cards each embed a switch, wired as a 4×4 2D mesh and speaking
//! High-Node-Count HyperTransport (the addressing extension that lifts HT's
//! 32-device limit so every RMC in the cluster is addressable).
//!
//! The crate provides:
//!
//! * [`NodeId`] — 1-based node identifiers (the paper's "there is no node 0"
//!   rule, which is what lets the RMC skip translation tables),
//! * [`msg`] — HT-style request/response messages with wire sizes,
//! * [`topology`] — 2D mesh (the prototype), 2D torus, ring and
//!   fully-connected alternatives with minimal deterministic routing,
//! * [`fabric`] — the packet-forwarding state machine: per-hop router delay,
//!   per-link serialization with FIFO contention, and per-link statistics.
//!
//! Forwarding is hop-by-hop: the owning event loop calls
//! [`fabric::Fabric::step`] once per router visit, keeping link contention
//! exact under any interleaving of traffic.

pub mod fabric;
pub mod msg;
pub mod topology;

pub use fabric::{step_row, Fabric, FabricConfig, FabricCounters, FabricRow, FabricShared, Step};
pub use msg::{Message, MsgKind, NodeId};
pub use topology::Topology;
