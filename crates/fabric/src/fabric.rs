//! Packet forwarding with link contention.
//!
//! [`Fabric`] holds one FIFO-contended serializer per directed physical link
//! plus a fixed router traversal delay per hop. The owning event loop drives
//! a message across the network by repeatedly calling [`Fabric::step`]:
//!
//! ```text
//! inject at src ── step(src) ──▶ Forward{next, arrive}
//!                  step(next) ─▶ Forward{...}
//!                  step(dst)  ─▶ Deliver           (hand to the local RMC)
//! ```
//!
//! Each `step` charges the router delay, then queues the message's wire bytes
//! on the outgoing link's serializer (FIFO among all traffic sharing that
//! link) and adds the propagation latency. Because steps happen in global
//! simulated-time order, link FIFO order is exact.

use crate::msg::{Message, NodeId};
use crate::topology::Topology;
use cohfree_sim::queueing::FifoServer;
use cohfree_sim::stats::Counter;
use cohfree_sim::{FastMap, FastSet, SimDuration, SimTime};
use std::collections::VecDeque;

/// Physical-layer timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Fixed switch/router traversal time per hop (FPGA-class by default).
    pub router_delay: SimDuration,
    /// Signal propagation + SerDes latency per link.
    pub link_latency: SimDuration,
    /// Link payload bandwidth in bytes per nanosecond (16-bit HT link
    /// ≈ 8 B/ns per direction at prototype clocks).
    pub bytes_per_ns: f64,
    /// Probability that a link traversal loses the message (bit error /
    /// buffer overrun). 0.0 (default) models the prototype's reliable
    /// board-to-board links; non-zero values drive the reliability study
    /// (`abl_reliability`), with recovery by RMC timeout/retransmission.
    pub loss_rate: f64,
    /// Seed for the deterministic loss process.
    pub loss_seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            router_delay: SimDuration::ns(60),
            link_latency: SimDuration::ns(20),
            bytes_per_ns: 8.0,
            loss_rate: 0.0,
            loss_seed: 0x10551055,
        }
    }
}

impl FabricConfig {
    /// Time to clock `bytes` onto a link.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::ns_f64(bytes as f64 / self.bytes_per_ns)
    }
}

/// Outcome of one routing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The message has reached its destination router; hand it to the local
    /// endpoint (RMC / OS) at the contained instant.
    Deliver {
        /// Delivery instant at the destination router.
        at: SimTime,
    },
    /// The message leaves on a link; call `step` again at `arrive` with
    /// position `next`.
    Forward {
        /// Router the message travels to.
        next: NodeId,
        /// Arrival instant at that router.
        arrive: SimTime,
    },
    /// The message is gone: the link lost it (non-zero
    /// [`FabricConfig::loss_rate`]), or no live route toward the
    /// destination exists (link/node outage). Recovery is the requester's
    /// problem either way.
    Dropped,
}

/// Per-directed-link state and statistics.
#[derive(Debug, Default)]
struct Link {
    server: FifoServer,
    messages: Counter,
    bytes: Counter,
}

/// The interconnect: topology + contended links.
#[derive(Debug)]
pub struct Fabric {
    topo: Topology,
    cfg: FabricConfig,
    /// Per-source adjacency: `adj[u]` holds `(v, link state)` for every
    /// physical directed link `u -> v`, sorted by `v`. Router degree is
    /// small (≤ 4 on the mesh), so the per-hop link lookup is a short
    /// linear scan instead of a hash, and snapshots enumerate links in
    /// `(from, to)` order without sorting.
    adj: Vec<Vec<(NodeId, Link)>>,
    delivered: Counter,
    total_hops: Counter,
    dropped: Counter,
    rerouted: Counter,
    unroutable: Counter,
    loss_rng: cohfree_sim::Rng,
    /// Directed links administratively down (both directions of a failed
    /// cable appear here; a direction that is not a physical link is
    /// harmless dead weight).
    down_links: FastSet<(NodeId, NodeId)>,
    /// Routers that are down; every incident link is unusable.
    down_nodes: FastSet<NodeId>,
    /// Live next-hop table, rebuilt by BFS whenever the outage set changes.
    /// Empty while the fabric is healthy (dimension-order routing applies).
    routes: FastMap<(NodeId, NodeId), NodeId>,
}

impl Fabric {
    /// Build a fabric over `topo` with physical parameters `cfg`.
    pub fn new(topo: Topology, cfg: FabricConfig) -> Fabric {
        let mut links = topo.links();
        links.sort_unstable_by_key(|&(u, v)| (u.get(), v.get()));
        let max_id = links
            .iter()
            .map(|&(u, v)| u.get().max(v.get()))
            .max()
            .unwrap_or(0) as usize;
        let mut adj: Vec<Vec<(NodeId, Link)>> = (0..=max_id).map(|_| Vec::new()).collect();
        for (u, v) in links {
            adj[u.get() as usize].push((v, Link::default()));
        }
        Fabric {
            topo,
            adj,
            delivered: Counter::new(),
            total_hops: Counter::new(),
            dropped: Counter::new(),
            rerouted: Counter::new(),
            unroutable: Counter::new(),
            loss_rng: cohfree_sim::Rng::new(cfg.loss_seed),
            down_links: FastSet::default(),
            down_nodes: FastSet::default(),
            routes: FastMap::default(),
            cfg,
        }
    }

    /// Shared state of the directed link `u -> v`, if it physically exists.
    #[inline]
    fn link(&self, u: NodeId, v: NodeId) -> Option<&Link> {
        self.adj
            .get(u.get() as usize)?
            .iter()
            .find(|&&(n, _)| n == v)
            .map(|(_, l)| l)
    }

    /// Mutable state of the directed link `u -> v`, if it physically exists.
    #[inline]
    fn link_mut(&mut self, u: NodeId, v: NodeId) -> Option<&mut Link> {
        self.adj
            .get_mut(u.get() as usize)?
            .iter_mut()
            .find(|&&mut (n, _)| n == v)
            .map(|(_, l)| l)
    }

    /// All physical directed links in `(from, to)` order.
    fn links_iter(&self) -> impl Iterator<Item = (NodeId, NodeId, &Link)> {
        self.adj.iter().enumerate().flat_map(|(u, vs)| {
            vs.iter()
                .map(move |&(v, ref l)| (NodeId::new(u as u16), v, l))
        })
    }

    /// True while any link or node outage is active.
    fn degraded(&self) -> bool {
        !self.down_links.is_empty() || !self.down_nodes.is_empty()
    }

    /// A directed link is usable iff it is physically present, not
    /// administratively down, and neither endpoint router is down.
    fn usable(&self, u: NodeId, v: NodeId) -> bool {
        !self.down_links.contains(&(u, v))
            && !self.down_nodes.contains(&u)
            && !self.down_nodes.contains(&v)
    }

    /// Recompute shortest live routes (BFS per destination over usable
    /// links, smallest-id neighbor first, so the table is deterministic).
    fn rebuild_routes(&mut self) {
        self.routes.clear();
        if !self.degraded() {
            return; // healthy fabric: dimension-order routing, no table.
        }
        // Reverse adjacency over usable links: radj[x] = all w with w -> x.
        let mut radj: FastMap<NodeId, Vec<NodeId>> = FastMap::default();
        let mut dsts: Vec<NodeId> = Vec::new();
        for (u, v, _) in self.links_iter() {
            if self.usable(u, v) {
                radj.entry(v).or_default().push(u);
            }
            dsts.push(v);
        }
        for preds in radj.values_mut() {
            preds.sort_unstable_by_key(|n| n.get());
        }
        dsts.sort_unstable_by_key(|n| n.get());
        dsts.dedup();
        for dst in dsts {
            let mut q = VecDeque::from([dst]);
            let mut seen: FastSet<NodeId> = FastSet::default();
            seen.insert(dst);
            while let Some(x) = q.pop_front() {
                let Some(preds) = radj.get(&x) else { continue };
                for &w in preds {
                    if seen.insert(w) {
                        self.routes.insert((w, dst), x);
                        q.push_back(w);
                    }
                }
            }
        }
    }

    /// Take the bidirectional link between `a` and `b` down; traffic
    /// reroutes over the surviving topology (or drops as unroutable).
    ///
    /// # Panics
    /// Panics if `a -> b` is not a physical link of the topology.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId) {
        assert!(
            self.link(a, b).is_some(),
            "no physical link {a}->{b} to take down"
        );
        self.down_links.insert((a, b));
        self.down_links.insert((b, a));
        self.rebuild_routes();
    }

    /// Restore the bidirectional link between `a` and `b`.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId) {
        self.down_links.remove(&(a, b));
        self.down_links.remove(&(b, a));
        self.rebuild_routes();
    }

    /// Take a router down: every incident link becomes unusable and no
    /// message can be delivered to or forwarded through the node.
    /// Independent link outages are tracked separately and survive a later
    /// [`Fabric::set_node_up`].
    pub fn set_node_down(&mut self, node: NodeId) {
        self.down_nodes.insert(node);
        self.rebuild_routes();
    }

    /// Bring a router back; only links downed via [`Fabric::set_link_down`]
    /// stay down.
    pub fn set_node_up(&mut self, node: NodeId) {
        self.down_nodes.remove(&node);
        self.rebuild_routes();
    }

    /// True if `node`'s router is currently down.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.down_nodes.contains(&node)
    }

    /// Number of bidirectional links currently forced down (node outages
    /// not included).
    pub fn links_down(&self) -> usize {
        self.down_links.len() / 2
    }

    /// The topology this fabric implements.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The physical configuration.
    pub fn config(&self) -> FabricConfig {
        self.cfg
    }

    /// Advance `msg`, currently at router `at` at time `now`, by one step.
    ///
    /// With an active outage ([`Fabric::set_link_down`] /
    /// [`Fabric::set_node_down`]) the live BFS route table replaces
    /// dimension-order routing; a destination with no surviving path drops
    /// the message (`unroutable`) without charging any link.
    ///
    /// # Panics
    /// Panics if the route requires a link that does not exist (would
    /// indicate a routing bug — property tests pin this down).
    pub fn step(&mut self, now: SimTime, at: NodeId, msg: &Message) -> Step {
        self.step_traced(now, at, msg).0
    }

    /// [`Fabric::step`] plus the FIFO wait the message spent queued behind
    /// other traffic on the link serializer (zero for `Deliver`/`Dropped`
    /// outcomes and uncontended links). The span tracer uses the wait to
    /// split each hop into its wire and fabric-queue phases.
    pub fn step_traced(&mut self, now: SimTime, at: NodeId, msg: &Message) -> (Step, SimDuration) {
        if at == msg.dst {
            self.delivered.inc();
            return (Step::Deliver { at: now }, SimDuration::ZERO);
        }
        let next = if self.degraded() {
            match self.routes.get(&(at, msg.dst)) {
                Some(&hop) => {
                    if hop != self.topo.next_hop(at, msg.dst) {
                        self.rerouted.inc();
                    }
                    hop
                }
                None => {
                    self.unroutable.inc();
                    self.dropped.inc();
                    return (Step::Dropped, SimDuration::ZERO);
                }
            }
        } else {
            self.topo.next_hop(at, msg.dst)
        };
        let wire = msg.wire_bytes();
        let ser = self.cfg.serialization(wire);
        let router_delay = self.cfg.router_delay;
        let link = self
            .link_mut(at, next)
            .unwrap_or_else(|| panic!("no physical link {at}->{next}"));
        // Router traversal, then FIFO on the link serializer, then flight time.
        let enq = now + router_delay;
        let depart = link.server.accept(enq, ser);
        let queued = depart.saturating_since(enq).saturating_sub(ser);
        link.messages.inc();
        link.bytes.add(wire as u64);
        self.total_hops.inc();
        if self.cfg.loss_rate > 0.0 && self.loss_rng.chance(self.cfg.loss_rate) {
            self.dropped.inc();
            return (Step::Dropped, queued);
        }
        (
            Step::Forward {
                next,
                arrive: depart + self.cfg.link_latency,
            },
            queued,
        )
    }

    /// Unloaded end-to-end traversal time for a message of `wire_bytes`
    /// over `hops` hops (no queueing). Used by the analytic model and as a
    /// lower bound in tests.
    pub fn unloaded_latency(&self, wire_bytes: u32, hops: u32) -> SimDuration {
        let per_hop =
            self.cfg.router_delay + self.cfg.serialization(wire_bytes) + self.cfg.link_latency;
        per_hop * hops as u64
    }

    /// Messages delivered to their destination so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Total link traversals (sum of per-message hop counts).
    pub fn total_hops(&self) -> u64 {
        self.total_hops.get()
    }

    /// Messages lost so far (link errors plus unroutable drops).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Hops taken that differ from the healthy dimension-order route
    /// (outage-induced detours).
    pub fn rerouted(&self) -> u64 {
        self.rerouted.get()
    }

    /// Messages dropped because no live route to their destination existed.
    pub fn unroutable(&self) -> u64 {
        self.unroutable.get()
    }

    /// Bytes carried by the directed link `u -> v` so far.
    pub fn link_bytes(&self, u: NodeId, v: NodeId) -> u64 {
        self.link(u, v).map_or(0, |l| l.bytes.get())
    }

    /// Messages carried by the directed link `u -> v` so far.
    pub fn link_messages(&self, u: NodeId, v: NodeId) -> u64 {
        self.link(u, v).map_or(0, |l| l.messages.get())
    }

    /// Utilization of the busiest directed link over `[0, horizon]`.
    pub fn max_link_utilization(&self, horizon: SimTime) -> f64 {
        self.links_iter()
            .map(|(_, _, l)| l.server.utilization(horizon))
            .fold(0.0, f64::max)
    }

    /// Largest time-to-drain backlog across links as seen at `now`.
    pub fn max_link_backlog(&self, now: SimTime) -> SimDuration {
        self.links_iter()
            .map(|(_, _, l)| l.server.backlog(now))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Mean queueing wait on the directed link `u -> v`.
    pub fn link_mean_wait(&self, u: NodeId, v: NodeId) -> SimDuration {
        self.link(u, v)
            .map_or(SimDuration::ZERO, |l| l.server.mean_wait())
    }

    /// Serializable view of delivery counters and per-link statistics, with
    /// utilization computed against `horizon`. Links are sorted by
    /// `(from, to)` so the output is stable across runs.
    pub fn snapshot(&self, horizon: SimTime) -> cohfree_sim::Json {
        use cohfree_sim::Json;
        // Adjacency lists are built sorted, so this is already (from, to) order.
        let links = self
            .links_iter()
            .map(|(u, v, l)| {
                Json::obj([
                    ("from", Json::from(u.get() as u64)),
                    ("to", Json::from(v.get() as u64)),
                    ("messages", l.messages.snapshot()),
                    ("bytes", l.bytes.snapshot()),
                    ("utilization", Json::from(l.server.utilization(horizon))),
                    ("mean_wait_ns", Json::from(l.server.mean_wait().as_ns_f64())),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("delivered", self.delivered.snapshot()),
            ("total_hops", self.total_hops.snapshot()),
            ("dropped", self.dropped.snapshot()),
            ("rerouted", self.rerouted.snapshot()),
            ("unroutable", self.unroutable.snapshot()),
            ("links_down", Json::from(self.links_down() as u64)),
            ("nodes_down", Json::from(self.down_nodes.len() as u64)),
            (
                "max_link_utilization",
                Json::from(self.max_link_utilization(horizon)),
            ),
            ("links", Json::Arr(links)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn mk_fabric() -> Fabric {
        Fabric::new(Topology::prototype(), FabricConfig::default())
    }

    /// Walk a message all the way to delivery, returning (delivery time, hops).
    fn walk(f: &mut Fabric, start: SimTime, msg: Message) -> (SimTime, u32) {
        let mut at = msg.src;
        let mut now = start;
        let mut hops = 0;
        loop {
            match f.step(now, at, &msg) {
                Step::Deliver { at: t } => return (t, hops),
                Step::Forward { next, arrive } => {
                    at = next;
                    now = arrive;
                    hops += 1;
                }
                Step::Dropped => panic!("unexpected drop on a lossless fabric"),
            }
        }
    }

    #[test]
    fn delivery_time_matches_unloaded_model_when_idle() {
        let mut f = mk_fabric();
        let msg = Message::new(n(1), n(16), MsgKind::ReadReq { bytes: 64 }, 0);
        let (t, hops) = walk(&mut f, SimTime::ZERO, msg);
        assert_eq!(hops, 6);
        let expected = f.unloaded_latency(msg.wire_bytes(), 6);
        assert_eq!(t, SimTime::ZERO + expected);
        assert_eq!(f.delivered(), 1);
        assert_eq!(f.total_hops(), 6);
    }

    #[test]
    fn latency_grows_with_distance() {
        // Core of the paper's Fig. 6: farther servers -> higher latency.
        let mut prev = SimDuration::ZERO;
        for dst in [2u16, 3, 4, 8, 12, 16] {
            let mut f = mk_fabric();
            let msg = Message::new(n(1), n(dst), MsgKind::ReadReq { bytes: 64 }, 0);
            let (t, _) = walk(&mut f, SimTime::ZERO, msg);
            let lat = t.since(SimTime::ZERO);
            assert!(lat > prev, "dst {dst}: {lat} !> {prev}");
            prev = lat;
        }
    }

    #[test]
    fn contention_on_shared_link_serializes() {
        let mut f = mk_fabric();
        let m1 = Message::new(n(1), n(2), MsgKind::ReadResp { bytes: 4096 }, 1);
        let m2 = Message::new(n(1), n(2), MsgKind::ReadResp { bytes: 4096 }, 2);
        let (t1, _) = walk(&mut f, SimTime::ZERO, m1);
        let (t2, _) = walk(&mut f, SimTime::ZERO, m2);
        // Second message waits for the first's ~513ns serialization.
        let ser = f.config().serialization(m1.wire_bytes());
        assert_eq!(t2.since(t1), ser);
        assert_eq!(f.link_messages(n(1), n(2)), 2);
        assert_eq!(f.link_bytes(n(1), n(2)), 2 * m1.wire_bytes() as u64);
    }

    #[test]
    fn disjoint_links_do_not_interfere() {
        let mut f = mk_fabric();
        let m1 = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 1);
        let m2 = Message::new(n(5), n(6), MsgKind::ReadReq { bytes: 64 }, 2);
        let (t1, _) = walk(&mut f, SimTime::ZERO, m1);
        let (t2, _) = walk(&mut f, SimTime::ZERO, m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn responses_travel_the_reverse_path() {
        let mut f = mk_fabric();
        let req = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 7);
        let (t_req, _) = walk(&mut f, SimTime::ZERO, req);
        let resp = req.reply(MsgKind::ReadResp { bytes: 64 });
        let (t_resp, hops) = walk(&mut f, t_req, resp);
        assert_eq!(hops, 2);
        assert!(t_resp > t_req);
        // Request used 1->2->3; response uses 3->2->1.
        assert_eq!(f.link_messages(n(1), n(2)), 1);
        assert_eq!(f.link_messages(n(3), n(2)), 1);
        assert_eq!(f.link_messages(n(2), n(1)), 1);
    }

    #[test]
    fn utilization_reflects_traffic() {
        let mut f = mk_fabric();
        let horizon = SimTime::ZERO + SimDuration::us(10);
        for tag in 0..50 {
            let m = Message::new(n(1), n(2), MsgKind::ReadResp { bytes: 4096 }, tag);
            walk(&mut f, SimTime::ZERO, m);
        }
        let u = f.max_link_utilization(horizon);
        assert!(u > 0.1, "utilization {u} unexpectedly low");
        assert!(f.link_mean_wait(n(1), n(2)) > SimDuration::ZERO);
    }

    #[test]
    fn unloaded_latency_is_linear_in_hops() {
        let f = mk_fabric();
        let one = f.unloaded_latency(76, 1);
        let six = f.unloaded_latency(76, 6);
        assert_eq!(six, one * 6);
    }

    #[test]
    fn total_loss_drops_everything() {
        let cfg = FabricConfig {
            loss_rate: 1.0,
            ..FabricConfig::default()
        };
        let mut f = Fabric::new(Topology::prototype(), cfg);
        let msg = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 0);
        assert_eq!(f.step(SimTime::ZERO, n(1), &msg), Step::Dropped);
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.delivered(), 0);
    }

    #[test]
    fn partial_loss_is_deterministic_and_partial() {
        let run = || {
            let cfg = FabricConfig {
                loss_rate: 0.3,
                ..FabricConfig::default()
            };
            let mut f = Fabric::new(Topology::prototype(), cfg);
            let mut outcomes = Vec::new();
            for tag in 0..200 {
                let msg = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, tag);
                outcomes.push(matches!(f.step(SimTime::ZERO, n(1), &msg), Step::Dropped));
            }
            (outcomes, f.dropped())
        };
        let (o1, d1) = run();
        let (o2, d2) = run();
        assert_eq!(o1, o2, "loss process must be deterministic");
        assert_eq!(d1, d2);
        assert!(d1 > 20 && d1 < 120, "drop count {d1} implausible for p=0.3");
    }

    #[test]
    fn traffic_reroutes_around_a_downed_mesh_link() {
        let mut f = mk_fabric();
        f.set_link_down(n(1), n(2));
        // Healthy route 1->2->3 is cut; the detour still delivers.
        let msg = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 0);
        let (_, hops) = walk(&mut f, SimTime::ZERO, msg);
        assert_eq!(hops, 4, "shortest detour on the mesh is 4 hops");
        assert_eq!(f.delivered(), 1);
        assert!(f.rerouted() > 0, "detour must be counted as rerouted");
        assert_eq!(f.unroutable(), 0);
        assert_eq!(f.links_down(), 1);
        // Restoring the link restores dimension-order routing.
        f.set_link_up(n(1), n(2));
        let msg2 = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 1);
        let before = f.rerouted();
        let (_, hops2) = walk(&mut f, SimTime::ZERO, msg2);
        assert_eq!(hops2, 2);
        assert_eq!(f.rerouted(), before);
        assert_eq!(f.links_down(), 0);
    }

    #[test]
    fn severed_destination_is_unroutable() {
        // A unidirectional ring has exactly one path; cutting it strands
        // the downstream neighbor.
        let mut f = Fabric::new(Topology::Ring { nodes: 5 }, FabricConfig::default());
        f.set_link_down(n(1), n(2));
        let msg = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 0);
        assert_eq!(f.step(SimTime::ZERO, n(1), &msg), Step::Dropped);
        assert_eq!(f.unroutable(), 1);
        assert_eq!(f.dropped(), 1);
        // The rest of the ring still works: 2 -> 1 rides 2->3->4->5->1.
        let msg2 = Message::new(n(2), n(1), MsgKind::ReadReq { bytes: 64 }, 1);
        let (_, hops) = walk(&mut f, SimTime::ZERO, msg2);
        assert_eq!(hops, 4);
    }

    #[test]
    fn node_down_blocks_delivery_and_transit_until_restored() {
        let mut f = mk_fabric();
        f.set_node_down(n(2));
        assert!(f.node_is_down(n(2)));
        // Messages *to* the dead router drop as unroutable.
        let to_dead = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 0);
        assert_eq!(f.step(SimTime::ZERO, n(1), &to_dead), Step::Dropped);
        assert!(f.unroutable() > 0);
        // Messages *through* it detour and deliver.
        let through = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 1);
        let (_, hops) = walk(&mut f, SimTime::ZERO, through);
        assert_eq!(hops, 4);
        // Restart heals everything; no residual link outages remain.
        f.set_node_up(n(2));
        assert!(!f.node_is_down(n(2)));
        let again = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 2);
        let (_, hops) = walk(&mut f, SimTime::ZERO, again);
        assert_eq!(hops, 1);
    }

    #[test]
    fn node_restart_preserves_independent_link_outages() {
        let mut f = mk_fabric();
        f.set_link_down(n(5), n(6));
        f.set_node_down(n(2));
        f.set_node_up(n(2));
        // The cable cut predates (and outlives) the node crash.
        assert_eq!(f.links_down(), 1);
        let msg = Message::new(n(5), n(6), MsgKind::ReadReq { bytes: 64 }, 0);
        let (_, hops) = walk(&mut f, SimTime::ZERO, msg);
        assert!(hops > 1, "5->6 must detour around the cut cable");
    }

    #[test]
    fn reroute_counters_accumulate_across_repeated_link_flaps() {
        let mut f = mk_fabric();
        let mut expected_rerouted = 0;
        for flap in 0..5u64 {
            f.set_link_down(n(1), n(2));
            // Down: 1->3 detours (healthy route is 1->2->3, 4 hops around),
            // and every detour hop that differs from dimension-order counts.
            let msg = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, flap * 2);
            let before = f.rerouted();
            let (_, hops) = walk(&mut f, SimTime::ZERO, msg);
            assert_eq!(hops, 4, "flap {flap}: detour must be 4 hops");
            let gained = f.rerouted() - before;
            assert!(gained > 0, "flap {flap}: detour not counted");
            expected_rerouted += gained;
            assert_eq!(f.links_down(), 1);
            // Up: dimension-order routing returns, counter stays flat.
            f.set_link_up(n(1), n(2));
            let msg = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, flap * 2 + 1);
            let before = f.rerouted();
            let (_, hops) = walk(&mut f, SimTime::ZERO, msg);
            assert_eq!(hops, 2, "flap {flap}: healthy route must return");
            assert_eq!(f.rerouted(), before, "flap {flap}: healthy hop counted");
            assert_eq!(f.links_down(), 0);
        }
        assert_eq!(f.rerouted(), expected_rerouted);
        assert_eq!(f.unroutable(), 0);
        assert_eq!(f.dropped(), 0);
        assert_eq!(f.delivered(), 10);
        // Flapping must not leak route-table state: a healthy fabric keeps
        // an empty table and the same counters as a never-flapped one.
        assert!(!f.degraded());
        assert!(f.routes.is_empty());
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut f = mk_fabric();
        for tag in 0..100 {
            let msg = Message::new(n(1), n(16), MsgKind::ReadReq { bytes: 64 }, tag);
            walk(&mut f, SimTime::ZERO, msg);
        }
        assert_eq!(f.dropped(), 0);
        assert_eq!(f.delivered(), 100);
    }
}
