//! Packet forwarding with link contention.
//!
//! [`Fabric`] holds one FIFO-contended serializer per directed physical link
//! plus a fixed router traversal delay per hop. The owning event loop drives
//! a message across the network by repeatedly calling [`Fabric::step`]:
//!
//! ```text
//! inject at src ── step(src) ──▶ Forward{next, arrive}
//!                  step(next) ─▶ Forward{...}
//!                  step(dst)  ─▶ Deliver           (hand to the local RMC)
//! ```
//!
//! Each `step` charges the router delay, then queues the message's wire bytes
//! on the outgoing link's serializer (FIFO among all traffic sharing that
//! link) and adds the propagation latency. Because steps happen in global
//! simulated-time order, link FIFO order is exact.
//!
//! ## Partition-aware decomposition
//!
//! A parallel world executor partitions nodes across worker threads, so the
//! fabric state splits along the same seam:
//!
//! * [`FabricShared`] — topology, timing, outage set and the live route
//!   table. Read-only during event execution; cheap to replicate per
//!   partition and refreshed by the coordinator after fault events.
//! * [`FabricRow`] — the outgoing links of ONE source router (serializers,
//!   per-link counters and the per-link loss RNG). Only events executing at
//!   that router touch its row, so rows shard cleanly across partitions.
//! * [`FabricCounters`] — the global delivery counters, kept per partition
//!   as deltas and folded back into the master at window barriers.
//!
//! Loss draws are per-link (seeded from the link's endpoints), not from one
//! global stream: each link's drop pattern depends only on its own traffic
//! order, which is identical however the world is partitioned.

use crate::msg::{Message, NodeId};
use crate::topology::Topology;
use cohfree_sim::queueing::FifoServer;
use cohfree_sim::stats::Counter;
use cohfree_sim::{FastMap, FastSet, SimDuration, SimTime};
use std::collections::VecDeque;

/// Physical-layer timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Fixed switch/router traversal time per hop (FPGA-class by default).
    pub router_delay: SimDuration,
    /// Signal propagation + SerDes latency per link.
    pub link_latency: SimDuration,
    /// Link payload bandwidth in bytes per nanosecond (16-bit HT link
    /// ≈ 8 B/ns per direction at prototype clocks).
    pub bytes_per_ns: f64,
    /// Probability that a link traversal loses the message (bit error /
    /// buffer overrun). 0.0 (default) models the prototype's reliable
    /// board-to-board links; non-zero values drive the reliability study
    /// (`abl_reliability`), with recovery by RMC timeout/retransmission.
    pub loss_rate: f64,
    /// Seed for the deterministic loss process.
    pub loss_seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            router_delay: SimDuration::ns(60),
            link_latency: SimDuration::ns(20),
            bytes_per_ns: 8.0,
            loss_rate: 0.0,
            loss_seed: 0x10551055,
        }
    }
}

impl FabricConfig {
    /// Time to clock `bytes` onto a link.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::ns_f64(bytes as f64 / self.bytes_per_ns)
    }
}

/// Outcome of one routing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The message has reached its destination router; hand it to the local
    /// endpoint (RMC / OS) at the contained instant.
    Deliver {
        /// Delivery instant at the destination router.
        at: SimTime,
    },
    /// The message leaves on a link; call `step` again at `arrive` with
    /// position `next`.
    Forward {
        /// Router the message travels to.
        next: NodeId,
        /// Arrival instant at that router.
        arrive: SimTime,
    },
    /// The message is gone: the link lost it (non-zero
    /// [`FabricConfig::loss_rate`]), or no live route toward the
    /// destination exists (link/node outage). Recovery is the requester's
    /// problem either way.
    Dropped,
}

/// Per-directed-link state and statistics.
#[derive(Debug, Clone)]
struct Link {
    server: FifoServer,
    messages: Counter,
    bytes: Counter,
    /// Deterministic per-link loss stream. Seeded from the link's endpoints
    /// so a link's drop pattern depends only on its own traffic order —
    /// identical however the world is partitioned across workers.
    loss: cohfree_sim::Rng,
}

impl Link {
    fn new(cfg: &FabricConfig, u: NodeId, v: NodeId) -> Link {
        let lane = ((u.get() as u64) << 16) | v.get() as u64;
        let seed = cfg
            .loss_seed
            .wrapping_add(lane.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Link {
            server: FifoServer::new(),
            messages: Counter::new(),
            bytes: Counter::new(),
            loss: cohfree_sim::Rng::new(seed),
        }
    }
}

/// The outgoing links of one source router, sorted by destination. Router
/// degree is small (≤ 4 on the mesh), so the per-hop link lookup is a short
/// linear scan instead of a hash, and snapshots enumerate links in
/// `(from, to)` order without sorting.
#[derive(Debug, Clone, Default)]
pub struct FabricRow {
    links: Vec<(NodeId, Link)>,
}

impl FabricRow {
    #[inline]
    fn link(&self, v: NodeId) -> Option<&Link> {
        self.links.iter().find(|&&(n, _)| n == v).map(|(_, l)| l)
    }

    #[inline]
    fn link_mut(&mut self, v: NodeId) -> Option<&mut Link> {
        self.links
            .iter_mut()
            .find(|&&mut (n, _)| n == v)
            .map(|(_, l)| l)
    }

    /// Largest time-to-drain backlog across this router's outgoing links.
    pub fn max_backlog(&self, now: SimTime) -> SimDuration {
        self.links
            .iter()
            .map(|(_, l)| l.server.backlog(now))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Global delivery counters, separable from the link state so a parallel
/// executor can accumulate per-partition deltas and fold them into the
/// master fabric at window barriers.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricCounters {
    delivered: Counter,
    total_hops: Counter,
    dropped: Counter,
    rerouted: Counter,
    unroutable: Counter,
}

impl FabricCounters {
    /// Fold `other` into `self` and reset `other` to zero.
    pub fn absorb(&mut self, other: &mut FabricCounters) {
        self.delivered.add(other.delivered.get());
        self.total_hops.add(other.total_hops.get());
        self.dropped.add(other.dropped.get());
        self.rerouted.add(other.rerouted.get());
        self.unroutable.add(other.unroutable.get());
        *other = FabricCounters::default();
    }
}

/// Topology, timing and routing state shared by every partition: read-only
/// during event execution, mutated only by fault handling on the master
/// copy (and then re-replicated to the partitions by the coordinator).
#[derive(Debug, Clone)]
pub struct FabricShared {
    topo: Topology,
    cfg: FabricConfig,
    /// Directed links administratively down (both directions of a failed
    /// cable appear here; a direction that is not a physical link is
    /// harmless dead weight).
    down_links: FastSet<(NodeId, NodeId)>,
    /// Routers that are down; every incident link is unusable.
    down_nodes: FastSet<NodeId>,
    /// Live next-hop table, rebuilt by BFS whenever the outage set changes.
    /// Empty while the fabric is healthy (dimension-order routing applies).
    routes: FastMap<(NodeId, NodeId), NodeId>,
}

impl FabricShared {
    /// True while any link or node outage is active.
    pub fn degraded(&self) -> bool {
        !self.down_links.is_empty() || !self.down_nodes.is_empty()
    }

    /// A directed link is usable iff it is physically present, not
    /// administratively down, and neither endpoint router is down.
    fn usable(&self, u: NodeId, v: NodeId) -> bool {
        !self.down_links.contains(&(u, v))
            && !self.down_nodes.contains(&u)
            && !self.down_nodes.contains(&v)
    }

    /// The smallest possible time between a send at one router and any
    /// consequence at another: one router traversal plus one link flight
    /// (serialization and queueing only add to it). This is the conservative
    /// lookahead window the parallel executor synchronizes on.
    pub fn min_hop_latency(&self) -> SimDuration {
        self.cfg.router_delay + self.cfg.link_latency
    }
}

/// The interconnect: topology + contended links.
#[derive(Debug)]
pub struct Fabric {
    shared: FabricShared,
    counters: FabricCounters,
    /// `rows[u]` holds router `u`'s outgoing links. A parallel world takes
    /// the rows out ([`Fabric::take_rows`]) and shards them with the nodes;
    /// this master copy then serves only control-plane duties.
    rows: Vec<FabricRow>,
}

impl Fabric {
    /// Build a fabric over `topo` with physical parameters `cfg`.
    pub fn new(topo: Topology, cfg: FabricConfig) -> Fabric {
        let mut links = topo.links();
        links.sort_unstable_by_key(|&(u, v)| (u.get(), v.get()));
        let max_id = links
            .iter()
            .map(|&(u, v)| u.get().max(v.get()))
            .max()
            .unwrap_or(0) as usize;
        let mut rows: Vec<FabricRow> = (0..=max_id).map(|_| FabricRow::default()).collect();
        for (u, v) in links {
            rows[u.get() as usize]
                .links
                .push((v, Link::new(&cfg, u, v)));
        }
        Fabric {
            shared: FabricShared {
                topo,
                cfg,
                down_links: FastSet::default(),
                down_nodes: FastSet::default(),
                routes: FastMap::default(),
            },
            counters: FabricCounters::default(),
            rows,
        }
    }

    /// A replica of the shared routing state for one partition.
    pub fn share(&self) -> FabricShared {
        self.shared.clone()
    }

    /// Borrow the shared routing state in place (no clone).
    pub fn shared_ref(&self) -> &FabricShared {
        &self.shared
    }

    /// Split-borrow the fabric into the three pieces one routing step
    /// needs: the read-only shared state, the counter accumulator, and the
    /// per-router link rows (indexed by node id; index 0 is a placeholder).
    /// A sequential engine steps against these directly; a parallel one
    /// replicates/shards them instead.
    pub fn decompose(&mut self) -> (&FabricShared, &mut FabricCounters, &mut [FabricRow]) {
        (&self.shared, &mut self.counters, &mut self.rows)
    }

    /// Move the per-router link rows out, indexed by node id (`rows[0]` is
    /// an unused placeholder). The master keeps empty rows afterwards; the
    /// caller owns the live link state and passes it back per call via the
    /// `*_with_rows` accessors.
    pub fn take_rows(&mut self) -> Vec<FabricRow> {
        std::mem::take(&mut self.rows)
    }

    /// Return previously [`Fabric::take_rows`]-taken rows to the master.
    ///
    /// # Panics
    /// Panics if the master still holds live rows (double restore).
    pub fn put_rows(&mut self, rows: Vec<FabricRow>) {
        assert!(self.rows.is_empty(), "fabric rows restored twice");
        self.rows = rows;
    }

    /// Fold a partition's counter deltas into the master (resets `other`).
    pub fn absorb_counters(&mut self, other: &mut FabricCounters) {
        self.counters.absorb(other);
    }

    /// Shared state of the directed link `u -> v`, if it physically exists.
    #[inline]
    fn link(&self, u: NodeId, v: NodeId) -> Option<&Link> {
        self.rows.get(u.get() as usize)?.link(v)
    }

    /// All physical directed links in `(from, to)` order.
    fn links_iter(&self) -> impl Iterator<Item = (NodeId, NodeId, &Link)> {
        rows_links_iter(self.rows.iter().enumerate().map(|(u, r)| {
            debug_assert!(u <= u16::MAX as usize);
            (NodeId::new(u.max(1) as u16), r)
        }))
    }

    /// Recompute shortest live routes: one BFS per destination over the
    /// usable reverse adjacency. Neighbor expansion is ordered by `NodeId`
    /// (the adjacency is index-based and built from the sorted physical
    /// link list), so among equal-cost detours the smallest-id next hop
    /// always wins — the table is a pure function of the outage set,
    /// independent of outage arrival order, hash-map iteration order, and
    /// world partitioning.
    fn rebuild_routes(&mut self) {
        let sh = &mut self.shared;
        sh.routes.clear();
        if !sh.degraded() {
            return; // healthy fabric: dimension-order routing, no table.
        }
        let mut links = sh.topo.links();
        links.sort_unstable_by_key(|&(u, v)| (u.get(), v.get()));
        let n = links
            .iter()
            .map(|&(u, v)| u.get().max(v.get()))
            .max()
            .unwrap_or(0) as usize;
        // Reverse adjacency over usable links: radj[x] = all w with w -> x,
        // ascending by construction (links are sorted source-major).
        let mut radj: Vec<Vec<NodeId>> = vec![Vec::new(); n + 1];
        for &(u, v) in &links {
            if sh.usable(u, v) {
                radj[v.get() as usize].push(u);
            }
        }
        debug_assert!(radj
            .iter()
            .all(|p| p.windows(2).all(|w| w[0].get() < w[1].get())));
        let mut seen = vec![false; n + 1];
        for dst_i in 1..=n {
            let dst = NodeId::new(dst_i as u16);
            seen.iter_mut().for_each(|s| *s = false);
            seen[dst_i] = true;
            let mut q = VecDeque::from([dst]);
            while let Some(x) = q.pop_front() {
                for &w in &radj[x.get() as usize] {
                    if !seen[w.get() as usize] {
                        seen[w.get() as usize] = true;
                        sh.routes.insert((w, dst), x);
                        q.push_back(w);
                    }
                }
            }
        }
    }

    /// Take the bidirectional link between `a` and `b` down; traffic
    /// reroutes over the surviving topology (or drops as unroutable).
    ///
    /// # Panics
    /// Panics if `a -> b` is not a physical link of the topology.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId) {
        assert!(
            self.shared.topo.links().contains(&(a, b)),
            "no physical link {a}->{b} to take down"
        );
        self.shared.down_links.insert((a, b));
        self.shared.down_links.insert((b, a));
        self.rebuild_routes();
    }

    /// Restore the bidirectional link between `a` and `b`.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId) {
        self.shared.down_links.remove(&(a, b));
        self.shared.down_links.remove(&(b, a));
        self.rebuild_routes();
    }

    /// Take a router down: every incident link becomes unusable and no
    /// message can be delivered to or forwarded through the node.
    /// Independent link outages are tracked separately and survive a later
    /// [`Fabric::set_node_up`].
    pub fn set_node_down(&mut self, node: NodeId) {
        self.shared.down_nodes.insert(node);
        self.rebuild_routes();
    }

    /// Bring a router back; only links downed via [`Fabric::set_link_down`]
    /// stay down.
    pub fn set_node_up(&mut self, node: NodeId) {
        self.shared.down_nodes.remove(&node);
        self.rebuild_routes();
    }

    /// True if `node`'s router is currently down.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.shared.down_nodes.contains(&node)
    }

    /// Number of bidirectional links currently forced down (node outages
    /// not included).
    pub fn links_down(&self) -> usize {
        self.shared.down_links.len() / 2
    }

    /// The topology this fabric implements.
    pub fn topology(&self) -> Topology {
        self.shared.topo
    }

    /// The physical configuration.
    pub fn config(&self) -> FabricConfig {
        self.shared.cfg
    }

    /// Smallest cross-router latency; see [`FabricShared::min_hop_latency`].
    pub fn min_hop_latency(&self) -> SimDuration {
        self.shared.min_hop_latency()
    }

    /// Advance `msg`, currently at router `at` at time `now`, by one step.
    ///
    /// With an active outage ([`Fabric::set_link_down`] /
    /// [`Fabric::set_node_down`]) the live BFS route table replaces
    /// dimension-order routing; a destination with no surviving path drops
    /// the message (`unroutable`) without charging any link.
    ///
    /// # Panics
    /// Panics if the route requires a link that does not exist (would
    /// indicate a routing bug — property tests pin this down).
    pub fn step(&mut self, now: SimTime, at: NodeId, msg: &Message) -> Step {
        self.step_traced(now, at, msg).0
    }

    /// [`Fabric::step`] plus the FIFO wait the message spent queued behind
    /// other traffic on the link serializer (zero for `Deliver`/`Dropped`
    /// outcomes and uncontended links). The span tracer uses the wait to
    /// split each hop into its wire and fabric-queue phases.
    pub fn step_traced(&mut self, now: SimTime, at: NodeId, msg: &Message) -> (Step, SimDuration) {
        let row = self
            .rows
            .get_mut(at.get() as usize)
            .unwrap_or_else(|| panic!("router {at} has no link row (rows taken?)"));
        step_row(&self.shared, &mut self.counters, row, now, at, msg)
    }

    /// Unloaded end-to-end traversal time for a message of `wire_bytes`
    /// over `hops` hops (no queueing). Used by the analytic model and as a
    /// lower bound in tests.
    pub fn unloaded_latency(&self, wire_bytes: u32, hops: u32) -> SimDuration {
        let per_hop = self.shared.cfg.router_delay
            + self.shared.cfg.serialization(wire_bytes)
            + self.shared.cfg.link_latency;
        per_hop * hops as u64
    }

    /// Messages delivered to their destination so far.
    pub fn delivered(&self) -> u64 {
        self.counters.delivered.get()
    }

    /// Total link traversals (sum of per-message hop counts).
    pub fn total_hops(&self) -> u64 {
        self.counters.total_hops.get()
    }

    /// Messages lost so far (link errors plus unroutable drops).
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.get()
    }

    /// Hops taken that differ from the healthy dimension-order route
    /// (outage-induced detours).
    pub fn rerouted(&self) -> u64 {
        self.counters.rerouted.get()
    }

    /// Messages dropped because no live route to their destination existed.
    pub fn unroutable(&self) -> u64 {
        self.counters.unroutable.get()
    }

    /// Bytes carried by the directed link `u -> v` so far.
    pub fn link_bytes(&self, u: NodeId, v: NodeId) -> u64 {
        self.link(u, v).map_or(0, |l| l.bytes.get())
    }

    /// Messages carried by the directed link `u -> v` so far.
    pub fn link_messages(&self, u: NodeId, v: NodeId) -> u64 {
        self.link(u, v).map_or(0, |l| l.messages.get())
    }

    /// Utilization of the busiest directed link over `[0, horizon]`.
    pub fn max_link_utilization(&self, horizon: SimTime) -> f64 {
        self.links_iter()
            .map(|(_, _, l)| l.server.utilization(horizon))
            .fold(0.0, f64::max)
    }

    /// Largest time-to-drain backlog across links as seen at `now`.
    pub fn max_link_backlog(&self, now: SimTime) -> SimDuration {
        self.rows
            .iter()
            .map(|r| r.max_backlog(now))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Largest time-to-drain backlog across `node`'s *outgoing* links as
    /// seen at `now` — the recovery manager's fabric-pressure watermark
    /// signal for one router.
    pub fn node_link_backlog(&self, now: SimTime, node: NodeId) -> SimDuration {
        self.rows
            .get(node.get() as usize)
            .map_or(SimDuration::ZERO, |r| r.max_backlog(now))
    }

    /// Borrow one router row per node in id order (`out[i]` is node
    /// `i + 1`, the placeholder row 0 skipped). The parallel engine builds
    /// the same shape from shard-owned rows so global observers (sampler,
    /// recovery manager) can run against a borrowed view without a merge.
    ///
    /// # Panics
    /// Panics if the rows are currently [`Fabric::take_rows`]-taken.
    pub fn row_refs(&self) -> Vec<&FabricRow> {
        assert!(
            !self.rows.is_empty(),
            "fabric rows are split out; build the view from the shards"
        );
        self.rows[1..].iter().collect()
    }

    /// Per-node isolation map under the current outage set: `out[id]` is
    /// true iff the node is down or every one of its incident links is
    /// unusable (a correlated link partition cut it off). Index 0 is an
    /// unused placeholder, mirroring the row layout.
    pub fn isolated_nodes(&self) -> Vec<bool> {
        let n = self.shared.topo.num_nodes() as usize;
        let mut isolated = vec![true; n + 1];
        isolated[0] = false;
        for (u, v) in self.shared.topo.links() {
            if self.shared.usable(u, v) {
                isolated[u.get() as usize] = false;
                isolated[v.get() as usize] = false;
            }
        }
        for &d in self.shared.down_nodes.iter() {
            if let Some(slot) = isolated.get_mut(d.get() as usize) {
                *slot = true;
            }
        }
        isolated
    }

    /// Mean queueing wait on the directed link `u -> v`.
    pub fn link_mean_wait(&self, u: NodeId, v: NodeId) -> SimDuration {
        self.link(u, v)
            .map_or(SimDuration::ZERO, |l| l.server.mean_wait())
    }

    /// Serializable view of delivery counters and per-link statistics, with
    /// utilization computed against `horizon`. Links are sorted by
    /// `(from, to)` so the output is stable across runs.
    pub fn snapshot(&self, horizon: SimTime) -> cohfree_sim::Json {
        self.snapshot_with_rows(
            horizon,
            self.rows
                .iter()
                .enumerate()
                .map(|(u, r)| (NodeId::new(u.max(1) as u16), r)),
        )
    }

    /// [`Fabric::snapshot`] over externally held rows (a world that took
    /// the rows passes them back here, in ascending node order).
    pub fn snapshot_with_rows<'a, I>(&self, horizon: SimTime, rows: I) -> cohfree_sim::Json
    where
        I: Iterator<Item = (NodeId, &'a FabricRow)>,
    {
        use cohfree_sim::Json;
        let mut max_util = 0.0f64;
        // Rows arrive in ascending node order and each row is sorted by
        // destination, so this is already (from, to) order.
        let links = rows_links_iter(rows)
            .map(|(u, v, l)| {
                let util = l.server.utilization(horizon);
                max_util = max_util.max(util);
                Json::obj([
                    ("from", Json::from(u.get() as u64)),
                    ("to", Json::from(v.get() as u64)),
                    ("messages", l.messages.snapshot()),
                    ("bytes", l.bytes.snapshot()),
                    ("utilization", Json::from(util)),
                    ("mean_wait_ns", Json::from(l.server.mean_wait().as_ns_f64())),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("delivered", self.counters.delivered.snapshot()),
            ("total_hops", self.counters.total_hops.snapshot()),
            ("dropped", self.counters.dropped.snapshot()),
            ("rerouted", self.counters.rerouted.snapshot()),
            ("unroutable", self.counters.unroutable.snapshot()),
            ("links_down", Json::from(self.links_down() as u64)),
            (
                "nodes_down",
                Json::from(self.shared.down_nodes.len() as u64),
            ),
            ("max_link_utilization", Json::from(max_util)),
            ("links", Json::Arr(links)),
        ])
    }
}

/// Flatten `(node, row)` pairs into `(from, to, link)` triples, skipping
/// empty rows (placeholder index 0 and routers with no outgoing links).
fn rows_links_iter<'a, I>(rows: I) -> impl Iterator<Item = (NodeId, NodeId, &'a Link)>
where
    I: Iterator<Item = (NodeId, &'a FabricRow)>,
{
    rows.flat_map(|(u, row)| row.links.iter().map(move |&(v, ref l)| (u, v, l)))
}

/// One routing step against decomposed fabric state: the partition-shared
/// routing view, a counter delta accumulator, and the current router's own
/// link row. [`Fabric::step_traced`] is this function applied to the
/// master's own state; a parallel worker applies it to its shard's.
pub fn step_row(
    shared: &FabricShared,
    counters: &mut FabricCounters,
    row: &mut FabricRow,
    now: SimTime,
    at: NodeId,
    msg: &Message,
) -> (Step, SimDuration) {
    if at == msg.dst {
        counters.delivered.inc();
        return (Step::Deliver { at: now }, SimDuration::ZERO);
    }
    let next = if shared.degraded() {
        match shared.routes.get(&(at, msg.dst)) {
            Some(&hop) => {
                if hop != shared.topo.next_hop(at, msg.dst) {
                    counters.rerouted.inc();
                }
                hop
            }
            None => {
                counters.unroutable.inc();
                counters.dropped.inc();
                return (Step::Dropped, SimDuration::ZERO);
            }
        }
    } else {
        shared.topo.next_hop(at, msg.dst)
    };
    let wire = msg.wire_bytes();
    let ser = shared.cfg.serialization(wire);
    let enq = now + shared.cfg.router_delay;
    let link = row
        .link_mut(next)
        .unwrap_or_else(|| panic!("no physical link {at}->{next}"));
    // Router traversal, then FIFO on the link serializer, then flight time.
    let depart = link.server.accept(enq, ser);
    let queued = depart.saturating_since(enq).saturating_sub(ser);
    link.messages.inc();
    link.bytes.add(wire as u64);
    counters.total_hops.inc();
    if shared.cfg.loss_rate > 0.0 && link.loss.chance(shared.cfg.loss_rate) {
        counters.dropped.inc();
        return (Step::Dropped, queued);
    }
    (
        Step::Forward {
            next,
            arrive: depart + shared.cfg.link_latency,
        },
        queued,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn mk_fabric() -> Fabric {
        Fabric::new(Topology::prototype(), FabricConfig::default())
    }

    /// Walk a message all the way to delivery, returning (delivery time, hops).
    fn walk(f: &mut Fabric, start: SimTime, msg: Message) -> (SimTime, u32) {
        let mut at = msg.src;
        let mut now = start;
        let mut hops = 0;
        loop {
            match f.step(now, at, &msg) {
                Step::Deliver { at: t } => return (t, hops),
                Step::Forward { next, arrive } => {
                    at = next;
                    now = arrive;
                    hops += 1;
                }
                Step::Dropped => panic!("unexpected drop on a lossless fabric"),
            }
        }
    }

    #[test]
    fn delivery_time_matches_unloaded_model_when_idle() {
        let mut f = mk_fabric();
        let msg = Message::new(n(1), n(16), MsgKind::ReadReq { bytes: 64 }, 0);
        let (t, hops) = walk(&mut f, SimTime::ZERO, msg);
        assert_eq!(hops, 6);
        let expected = f.unloaded_latency(msg.wire_bytes(), 6);
        assert_eq!(t, SimTime::ZERO + expected);
        assert_eq!(f.delivered(), 1);
        assert_eq!(f.total_hops(), 6);
    }

    #[test]
    fn latency_grows_with_distance() {
        // Core of the paper's Fig. 6: farther servers -> higher latency.
        let mut prev = SimDuration::ZERO;
        for dst in [2u16, 3, 4, 8, 12, 16] {
            let mut f = mk_fabric();
            let msg = Message::new(n(1), n(dst), MsgKind::ReadReq { bytes: 64 }, 0);
            let (t, _) = walk(&mut f, SimTime::ZERO, msg);
            let lat = t.since(SimTime::ZERO);
            assert!(lat > prev, "dst {dst}: {lat} !> {prev}");
            prev = lat;
        }
    }

    #[test]
    fn contention_on_shared_link_serializes() {
        let mut f = mk_fabric();
        let m1 = Message::new(n(1), n(2), MsgKind::ReadResp { bytes: 4096 }, 1);
        let m2 = Message::new(n(1), n(2), MsgKind::ReadResp { bytes: 4096 }, 2);
        let (t1, _) = walk(&mut f, SimTime::ZERO, m1);
        let (t2, _) = walk(&mut f, SimTime::ZERO, m2);
        // Second message waits for the first's ~513ns serialization.
        let ser = f.config().serialization(m1.wire_bytes());
        assert_eq!(t2.since(t1), ser);
        assert_eq!(f.link_messages(n(1), n(2)), 2);
        assert_eq!(f.link_bytes(n(1), n(2)), 2 * m1.wire_bytes() as u64);
    }

    #[test]
    fn disjoint_links_do_not_interfere() {
        let mut f = mk_fabric();
        let m1 = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 1);
        let m2 = Message::new(n(5), n(6), MsgKind::ReadReq { bytes: 64 }, 2);
        let (t1, _) = walk(&mut f, SimTime::ZERO, m1);
        let (t2, _) = walk(&mut f, SimTime::ZERO, m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn responses_travel_the_reverse_path() {
        let mut f = mk_fabric();
        let req = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 7);
        let (t_req, _) = walk(&mut f, SimTime::ZERO, req);
        let resp = req.reply(MsgKind::ReadResp { bytes: 64 });
        let (t_resp, hops) = walk(&mut f, t_req, resp);
        assert_eq!(hops, 2);
        assert!(t_resp > t_req);
        // Request used 1->2->3; response uses 3->2->1.
        assert_eq!(f.link_messages(n(1), n(2)), 1);
        assert_eq!(f.link_messages(n(3), n(2)), 1);
        assert_eq!(f.link_messages(n(2), n(1)), 1);
    }

    #[test]
    fn utilization_reflects_traffic() {
        let mut f = mk_fabric();
        let horizon = SimTime::ZERO + SimDuration::us(10);
        for tag in 0..50 {
            let m = Message::new(n(1), n(2), MsgKind::ReadResp { bytes: 4096 }, tag);
            walk(&mut f, SimTime::ZERO, m);
        }
        let u = f.max_link_utilization(horizon);
        assert!(u > 0.1, "utilization {u} unexpectedly low");
        assert!(f.link_mean_wait(n(1), n(2)) > SimDuration::ZERO);
    }

    #[test]
    fn unloaded_latency_is_linear_in_hops() {
        let f = mk_fabric();
        let one = f.unloaded_latency(76, 1);
        let six = f.unloaded_latency(76, 6);
        assert_eq!(six, one * 6);
    }

    #[test]
    fn min_hop_latency_is_a_true_lower_bound() {
        let f = mk_fabric();
        let w = f.min_hop_latency();
        assert_eq!(w, f.config().router_delay + f.config().link_latency);
        // Any real hop (which adds serialization) takes at least W.
        assert!(f.unloaded_latency(1, 1) >= w);
        assert!(w > SimDuration::ZERO);
    }

    #[test]
    fn total_loss_drops_everything() {
        let cfg = FabricConfig {
            loss_rate: 1.0,
            ..FabricConfig::default()
        };
        let mut f = Fabric::new(Topology::prototype(), cfg);
        let msg = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 0);
        assert_eq!(f.step(SimTime::ZERO, n(1), &msg), Step::Dropped);
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.delivered(), 0);
    }

    #[test]
    fn partial_loss_is_deterministic_and_partial() {
        let run = || {
            let cfg = FabricConfig {
                loss_rate: 0.3,
                ..FabricConfig::default()
            };
            let mut f = Fabric::new(Topology::prototype(), cfg);
            let mut outcomes = Vec::new();
            for tag in 0..200 {
                let msg = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, tag);
                outcomes.push(matches!(f.step(SimTime::ZERO, n(1), &msg), Step::Dropped));
            }
            (outcomes, f.dropped())
        };
        let (o1, d1) = run();
        let (o2, d2) = run();
        assert_eq!(o1, o2, "loss process must be deterministic");
        assert_eq!(d1, d2);
        assert!(d1 > 20 && d1 < 120, "drop count {d1} implausible for p=0.3");
    }

    #[test]
    fn loss_streams_are_per_link_and_order_independent() {
        // A link's drop pattern must depend only on its own traffic order,
        // not on global interleaving — otherwise partitioning the world
        // would change which messages die. Interleave traffic on a second
        // link and check the first link's pattern is unchanged.
        let cfg = FabricConfig {
            loss_rate: 0.3,
            ..FabricConfig::default()
        };
        let pattern = |interleave: bool| {
            let mut f = Fabric::new(Topology::prototype(), cfg);
            let mut outcomes = Vec::new();
            for tag in 0..100 {
                if interleave {
                    let other = Message::new(n(5), n(6), MsgKind::ReadReq { bytes: 64 }, tag);
                    let _ = f.step(SimTime::ZERO, n(5), &other);
                }
                let msg = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, tag);
                outcomes.push(matches!(f.step(SimTime::ZERO, n(1), &msg), Step::Dropped));
            }
            outcomes
        };
        assert_eq!(pattern(false), pattern(true));
    }

    #[test]
    fn traffic_reroutes_around_a_downed_mesh_link() {
        let mut f = mk_fabric();
        f.set_link_down(n(1), n(2));
        // Healthy route 1->2->3 is cut; the detour still delivers.
        let msg = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 0);
        let (_, hops) = walk(&mut f, SimTime::ZERO, msg);
        assert_eq!(hops, 4, "shortest detour on the mesh is 4 hops");
        assert_eq!(f.delivered(), 1);
        assert!(f.rerouted() > 0, "detour must be counted as rerouted");
        assert_eq!(f.unroutable(), 0);
        assert_eq!(f.links_down(), 1);
        // Restoring the link restores dimension-order routing.
        f.set_link_up(n(1), n(2));
        let msg2 = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 1);
        let before = f.rerouted();
        let (_, hops2) = walk(&mut f, SimTime::ZERO, msg2);
        assert_eq!(hops2, 2);
        assert_eq!(f.rerouted(), before);
        assert_eq!(f.links_down(), 0);
    }

    #[test]
    fn reroute_tie_break_is_deterministic_and_history_independent() {
        // The BFS route table must be a pure function of the outage set:
        // identical whether an outage arrived directly or via a history of
        // other faults, and identical across repeated rebuilds. Downstream
        // timestamps (and the parallel engine's byte-identity guarantee)
        // depend on this.
        let direct = {
            let mut f = mk_fabric();
            f.set_link_down(n(6), n(7));
            f.shared.routes.clone()
        };
        let with_history = {
            let mut f = mk_fabric();
            f.set_node_down(n(11));
            f.set_link_down(n(1), n(2));
            f.set_link_up(n(1), n(2));
            f.set_node_up(n(11));
            f.set_link_down(n(6), n(7));
            f.shared.routes.clone()
        };
        assert_eq!(direct.len(), with_history.len());
        for (k, v) in &direct {
            assert_eq!(with_history.get(k), Some(v), "route {k:?} diverged");
        }
        // Equal-cost detours resolve to the smallest-id neighbor: from 6
        // toward 7 with 6->7 cut, both 2 (up) and 10 (down) give 3-hop
        // detours on the 4x4 mesh; the BFS must pick 2 every time.
        assert_eq!(direct.get(&(n(6), n(7))), Some(&n(2)));
        for _ in 0..5 {
            let mut f = mk_fabric();
            f.set_link_down(n(6), n(7));
            assert_eq!(f.shared.routes, direct);
        }
    }

    #[test]
    fn severed_destination_is_unroutable() {
        // A unidirectional ring has exactly one path; cutting it strands
        // the downstream neighbor.
        let mut f = Fabric::new(Topology::Ring { nodes: 5 }, FabricConfig::default());
        f.set_link_down(n(1), n(2));
        let msg = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 0);
        assert_eq!(f.step(SimTime::ZERO, n(1), &msg), Step::Dropped);
        assert_eq!(f.unroutable(), 1);
        assert_eq!(f.dropped(), 1);
        // The rest of the ring still works: 2 -> 1 rides 2->3->4->5->1.
        let msg2 = Message::new(n(2), n(1), MsgKind::ReadReq { bytes: 64 }, 1);
        let (_, hops) = walk(&mut f, SimTime::ZERO, msg2);
        assert_eq!(hops, 4);
    }

    #[test]
    fn node_down_blocks_delivery_and_transit_until_restored() {
        let mut f = mk_fabric();
        f.set_node_down(n(2));
        assert!(f.node_is_down(n(2)));
        // Messages *to* the dead router drop as unroutable.
        let to_dead = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 0);
        assert_eq!(f.step(SimTime::ZERO, n(1), &to_dead), Step::Dropped);
        assert!(f.unroutable() > 0);
        // Messages *through* it detour and deliver.
        let through = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 1);
        let (_, hops) = walk(&mut f, SimTime::ZERO, through);
        assert_eq!(hops, 4);
        // Restart heals everything; no residual link outages remain.
        f.set_node_up(n(2));
        assert!(!f.node_is_down(n(2)));
        let again = Message::new(n(1), n(2), MsgKind::ReadReq { bytes: 64 }, 2);
        let (_, hops) = walk(&mut f, SimTime::ZERO, again);
        assert_eq!(hops, 1);
    }

    #[test]
    fn node_restart_preserves_independent_link_outages() {
        let mut f = mk_fabric();
        f.set_link_down(n(5), n(6));
        f.set_node_down(n(2));
        f.set_node_up(n(2));
        // The cable cut predates (and outlives) the node crash.
        assert_eq!(f.links_down(), 1);
        let msg = Message::new(n(5), n(6), MsgKind::ReadReq { bytes: 64 }, 0);
        let (_, hops) = walk(&mut f, SimTime::ZERO, msg);
        assert!(hops > 1, "5->6 must detour around the cut cable");
    }

    #[test]
    fn reroute_counters_accumulate_across_repeated_link_flaps() {
        let mut f = mk_fabric();
        let mut expected_rerouted = 0;
        for flap in 0..5u64 {
            f.set_link_down(n(1), n(2));
            // Down: 1->3 detours (healthy route is 1->2->3, 4 hops around),
            // and every detour hop that differs from dimension-order counts.
            let msg = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, flap * 2);
            let before = f.rerouted();
            let (_, hops) = walk(&mut f, SimTime::ZERO, msg);
            assert_eq!(hops, 4, "flap {flap}: detour must be 4 hops");
            let gained = f.rerouted() - before;
            assert!(gained > 0, "flap {flap}: detour not counted");
            expected_rerouted += gained;
            assert_eq!(f.links_down(), 1);
            // Up: dimension-order routing returns, counter stays flat.
            f.set_link_up(n(1), n(2));
            let msg = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, flap * 2 + 1);
            let before = f.rerouted();
            let (_, hops) = walk(&mut f, SimTime::ZERO, msg);
            assert_eq!(hops, 2, "flap {flap}: healthy route must return");
            assert_eq!(f.rerouted(), before, "flap {flap}: healthy hop counted");
            assert_eq!(f.links_down(), 0);
        }
        assert_eq!(f.rerouted(), expected_rerouted);
        assert_eq!(f.unroutable(), 0);
        assert_eq!(f.dropped(), 0);
        assert_eq!(f.delivered(), 10);
        // Flapping must not leak route-table state: a healthy fabric keeps
        // an empty table and the same counters as a never-flapped one.
        assert!(!f.shared.degraded());
        assert!(f.shared.routes.is_empty());
    }

    #[test]
    fn taken_rows_step_identically_to_the_master_path() {
        // Decomposed stepping (shared + counters + row, as a parallel
        // worker drives it) must behave exactly like Fabric::step.
        let mut whole = mk_fabric();
        let mut split = mk_fabric();
        let shared = split.share();
        let mut rows = split.take_rows();
        let mut counters = FabricCounters::default();
        let msg = Message::new(n(1), n(3), MsgKind::ReadReq { bytes: 64 }, 9);
        let mut at = n(1);
        let mut now = SimTime::ZERO;
        loop {
            let want = whole.step(now, at, &msg);
            let (got, _) = step_row(
                &shared,
                &mut counters,
                &mut rows[at.get() as usize],
                now,
                at,
                &msg,
            );
            assert_eq!(got, want);
            match got {
                Step::Deliver { .. } | Step::Dropped => break,
                Step::Forward { next, arrive } => {
                    at = next;
                    now = arrive;
                }
            }
        }
        split.absorb_counters(&mut counters);
        assert_eq!(split.delivered(), whole.delivered());
        assert_eq!(split.total_hops(), whole.total_hops());
        assert_eq!(counters.delivered.get(), 0, "absorb must reset the delta");
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut f = mk_fabric();
        for tag in 0..100 {
            let msg = Message::new(n(1), n(16), MsgKind::ReadReq { bytes: 64 }, tag);
            walk(&mut f, SimTime::ZERO, msg);
        }
        assert_eq!(f.dropped(), 0);
        assert_eq!(f.delivered(), 100);
    }
}
