//! Fabric messages.
//!
//! Messages are HT-style packets exchanged between RMCs (and, for the OS
//! substrate, between kernels over the same wires). Every message carries a
//! `tag` so responses can be matched to outstanding requests, and a wire size
//! derived from its kind — requests are header-only (plus data for writes),
//! responses carry the requested data.

use std::fmt;
use std::num::NonZeroU16;

/// A 1-based cluster node identifier.
///
/// The paper reserves prefix 0 to mean "local", so **node 0 never exists**;
/// this invariant is enforced at construction. With the 14-bit address
/// prefix, at most `2^14 - 1 = 16383` nodes are addressable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(NonZeroU16);

/// Maximum addressable node id under the 14-bit prefix (ids are 1-based).
pub const MAX_NODE_ID: u16 = (1 << 14) - 1;

impl NodeId {
    /// Construct a node id.
    ///
    /// # Panics
    /// Panics if `id` is 0 (reserved for "local") or exceeds the 14-bit
    /// prefix space.
    pub fn new(id: u16) -> NodeId {
        assert!(
            id >= 1,
            "node ids are 1-based; node 0 is reserved for 'local'"
        );
        assert!(
            id <= MAX_NODE_ID,
            "node id {id} exceeds the 14-bit prefix space (max {MAX_NODE_ID})"
        );
        NodeId(NonZeroU16::new(id).expect("checked above"))
    }

    /// Construct if valid.
    pub fn try_new(id: u16) -> Option<NodeId> {
        (1..=MAX_NODE_ID).contains(&id).then(|| NodeId::new(id))
    }

    /// The raw 1-based id.
    #[inline]
    pub fn get(self) -> u16 {
        self.0.get()
    }

    /// Zero-based index for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0.get() as usize - 1
    }

    /// The node with zero-based index `i`.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId::new(u16::try_from(i + 1).expect("node index out of range"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0.get())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0.get())
    }
}

/// What a fabric message does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Remote memory read request for `bytes` (typically one cache line).
    ReadReq {
        /// Bytes requested.
        bytes: u32,
    },
    /// Read response carrying `bytes` of data.
    ReadResp {
        /// Bytes of data carried.
        bytes: u32,
    },
    /// Remote memory write (posted or non-posted) carrying `bytes` of data.
    WriteReq {
        /// Bytes of data carried.
        bytes: u32,
    },
    /// Write completion acknowledgement.
    WriteAck,
    /// OS-level memory reservation request for `frames` page frames.
    ResvReq {
        /// Page frames requested.
        frames: u64,
    },
    /// Reservation acknowledgement carrying the granted base address.
    ResvAck,
    /// OS-level release of a previous reservation.
    ResvRelease,
    /// Remote-swap page fetch request.
    PageReq {
        /// Page size requested.
        bytes: u32,
    },
    /// Remote-swap page fetch response carrying a whole page.
    PageResp {
        /// Page size carried.
        bytes: u32,
    },
    /// Remote-swap page write-out (evicting a dirty page to its home).
    PageWrite {
        /// Page size carried.
        bytes: u32,
    },
    /// Acknowledgement of a page write-out.
    PageWriteAck,
    /// Coherent-DSM read request: like [`MsgKind::ReadReq`], but the home
    /// must snoop every cache in the (inter-node) coherency domain before
    /// answering — the 3Leaf/Aqua-style baseline the paper argues against.
    CohReadReq {
        /// Bytes requested.
        bytes: u32,
    },
    /// Snoop probe sent by the home node to one coherency-domain member.
    ProbeReq,
    /// A member's snoop response (no data in the clean-sharer common case).
    ProbeResp,
}

/// HT-style packet header size on the wire (command + address + routing
/// prefix), per the High-Node-Count HT encapsulation.
pub const HEADER_BYTES: u32 = 12;

impl MsgKind {
    /// Payload bytes carried (data only, excluding the header).
    pub fn payload_bytes(self) -> u32 {
        match self {
            MsgKind::ReadReq { .. } => 0,
            MsgKind::ReadResp { bytes } => bytes,
            MsgKind::WriteReq { bytes } => bytes,
            MsgKind::WriteAck => 0,
            MsgKind::ResvReq { .. } => 16,
            MsgKind::ResvAck => 16,
            MsgKind::ResvRelease => 16,
            MsgKind::PageReq { .. } => 0,
            MsgKind::PageResp { bytes } => bytes,
            MsgKind::PageWrite { bytes } => bytes,
            MsgKind::PageWriteAck => 0,
            MsgKind::CohReadReq { .. } => 0,
            MsgKind::ProbeReq => 0,
            MsgKind::ProbeResp => 0,
        }
    }

    /// Total bytes on the wire, header included.
    pub fn wire_bytes(self) -> u32 {
        HEADER_BYTES + self.payload_bytes()
    }

    /// True for messages that answer an earlier request.
    pub fn is_response(self) -> bool {
        matches!(
            self,
            MsgKind::ReadResp { .. }
                | MsgKind::WriteAck
                | MsgKind::ResvAck
                | MsgKind::PageResp { .. }
                | MsgKind::PageWriteAck
                | MsgKind::ProbeResp
        )
    }
}

/// A message in flight between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message kind (determines wire size).
    pub kind: MsgKind,
    /// Correlation tag: responses copy the request's tag.
    pub tag: u64,
    /// Physical address the message refers to (prefixed form for memory
    /// operations; reservation base for OS messages; 0 when meaningless).
    pub addr: u64,
}

impl Message {
    /// Convenience constructor (address 0).
    pub fn new(src: NodeId, dst: NodeId, kind: MsgKind, tag: u64) -> Message {
        Message {
            src,
            dst,
            kind,
            tag,
            addr: 0,
        }
    }

    /// Constructor carrying a physical address.
    pub fn with_addr(src: NodeId, dst: NodeId, kind: MsgKind, tag: u64, addr: u64) -> Message {
        Message {
            src,
            dst,
            kind,
            tag,
            addr,
        }
    }

    /// Bytes this message occupies on each link it traverses.
    pub fn wire_bytes(&self) -> u32 {
        self.kind.wire_bytes()
    }

    /// Build the response message travelling back to the requester.
    ///
    /// # Panics
    /// Panics (debug) if `kind` is not a response kind.
    pub fn reply(&self, kind: MsgKind) -> Message {
        debug_assert!(
            kind.is_response(),
            "reply() with non-response kind {kind:?}"
        );
        Message {
            src: self.dst,
            dst: self.src,
            kind,
            tag: self.tag,
            addr: self.addr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_one_based() {
        let n = NodeId::new(1);
        assert_eq!(n.get(), 1);
        assert_eq!(n.index(), 0);
        assert_eq!(NodeId::from_index(0), n);
        assert_eq!(NodeId::from_index(15).get(), 16);
    }

    #[test]
    #[should_panic(expected = "node 0 is reserved")]
    fn node_zero_rejected() {
        let _ = NodeId::new(0);
    }

    #[test]
    #[should_panic(expected = "14-bit prefix")]
    fn node_beyond_prefix_rejected() {
        let _ = NodeId::new(MAX_NODE_ID + 1);
    }

    #[test]
    fn try_new_bounds() {
        assert!(NodeId::try_new(0).is_none());
        assert!(NodeId::try_new(1).is_some());
        assert!(NodeId::try_new(MAX_NODE_ID).is_some());
        assert!(NodeId::try_new(MAX_NODE_ID + 1).is_none());
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(MsgKind::ReadReq { bytes: 64 }.wire_bytes(), HEADER_BYTES);
        assert_eq!(
            MsgKind::ReadResp { bytes: 64 }.wire_bytes(),
            HEADER_BYTES + 64
        );
        assert_eq!(
            MsgKind::WriteReq { bytes: 64 }.wire_bytes(),
            HEADER_BYTES + 64
        );
        assert_eq!(MsgKind::WriteAck.wire_bytes(), HEADER_BYTES);
        assert_eq!(
            MsgKind::PageResp { bytes: 4096 }.wire_bytes(),
            HEADER_BYTES + 4096
        );
    }

    #[test]
    fn response_classification() {
        assert!(!MsgKind::ReadReq { bytes: 64 }.is_response());
        assert!(MsgKind::ReadResp { bytes: 64 }.is_response());
        assert!(MsgKind::WriteAck.is_response());
        assert!(!MsgKind::PageReq { bytes: 4096 }.is_response());
        assert!(MsgKind::PageWriteAck.is_response());
        assert!(!MsgKind::ResvReq { frames: 1 }.is_response());
        assert!(MsgKind::ResvAck.is_response());
    }

    #[test]
    fn reply_swaps_endpoints_and_keeps_tag() {
        let req = Message::new(
            NodeId::new(3),
            NodeId::new(7),
            MsgKind::ReadReq { bytes: 64 },
            99,
        );
        let resp = req.reply(MsgKind::ReadResp { bytes: 64 });
        assert_eq!(resp.src, NodeId::new(7));
        assert_eq!(resp.dst, NodeId::new(3));
        assert_eq!(resp.tag, 99);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", NodeId::new(12)), "n12");
        assert_eq!(format!("{:?}", NodeId::new(12)), "n12");
    }
}
