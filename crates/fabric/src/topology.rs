//! Cluster topologies and minimal deterministic routing.
//!
//! The prototype wires its 16 nodes as a 4×4 2D mesh using four of the six
//! HTX-card connectors. We additionally provide a torus, a ring and a
//! fully-connected fabric for the topology ablation (the paper notes that
//! HT-over-Ethernet / HT-over-InfiniBand would allow indirect fabrics).
//!
//! Routing is **dimension-order (X then Y)** for mesh and torus — minimal and
//! deadlock-free — and trivially direct for ring/fully-connected. All routes
//! are deterministic, which the DES requires.

use crate::msg::NodeId;

/// A cluster interconnect topology.
///
/// ```
/// use cohfree_fabric::{NodeId, Topology};
///
/// let mesh = Topology::prototype(); // the paper's 4x4 mesh
/// let (a, b) = (NodeId::new(1), NodeId::new(16));
/// assert_eq!(mesh.hops(a, b), 6); // opposite corners
/// assert_eq!(mesh.route(a, b).len(), 6); // dimension-order, minimal
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `width × height` 2D mesh, dimension-order routed (the prototype:
    /// `Mesh2D { width: 4, height: 4 }`).
    Mesh2D {
        /// Nodes per row.
        width: u16,
        /// Rows.
        height: u16,
    },
    /// `width × height` 2D torus with wraparound links, dimension-order
    /// routed taking the shorter way around each dimension (ties go the
    /// positive direction).
    Torus2D {
        /// Nodes per row.
        width: u16,
        /// Rows.
        height: u16,
    },
    /// Unidirectional ring (messages travel toward increasing ids, wrapping).
    Ring {
        /// Nodes on the ring.
        nodes: u16,
    },
    /// Every pair of nodes directly linked (models an ideal crossbar /
    /// indirect switch).
    FullyConnected {
        /// Nodes in the clique.
        nodes: u16,
    },
}

impl Topology {
    /// The prototype fabric: a 4×4 mesh of 16 nodes.
    pub fn prototype() -> Topology {
        Topology::Mesh2D {
            width: 4,
            height: 4,
        }
    }

    /// Number of nodes in the topology.
    pub fn num_nodes(&self) -> u16 {
        match *self {
            Topology::Mesh2D { width, height } | Topology::Torus2D { width, height } => {
                width * height
            }
            Topology::Ring { nodes } | Topology::FullyConnected { nodes } => nodes,
        }
    }

    /// True if `n` is a valid node of this topology.
    pub fn contains(&self, n: NodeId) -> bool {
        n.get() <= self.num_nodes()
    }

    /// (x, y) grid coordinates for mesh/torus nodes (row-major, node 1 at
    /// (0,0)); for ring/fully-connected, `(index, 0)`.
    pub fn coords(&self, n: NodeId) -> (u16, u16) {
        debug_assert!(self.contains(n), "{n} outside topology");
        match *self {
            Topology::Mesh2D { width, .. } | Topology::Torus2D { width, .. } => {
                let i = n.index() as u16;
                (i % width, i / width)
            }
            _ => (n.index() as u16, 0),
        }
    }

    /// Node at grid coordinates (mesh/torus only).
    pub fn node_at(&self, x: u16, y: u16) -> NodeId {
        match *self {
            Topology::Mesh2D { width, height } | Topology::Torus2D { width, height } => {
                assert!(x < width && y < height, "coords ({x},{y}) out of grid");
                NodeId::from_index((y * width + x) as usize)
            }
            _ => panic!("node_at() is only defined for grid topologies"),
        }
    }

    /// The next node on the (deterministic, minimal) route from `from`
    /// toward `to`. Returns `to` itself when directly connected.
    ///
    /// # Panics
    /// Panics if `from == to` (there is no hop to take).
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
        assert_ne!(from, to, "next_hop called with from == to");
        debug_assert!(self.contains(from) && self.contains(to));
        match *self {
            Topology::Mesh2D { .. } => {
                let (fx, fy) = self.coords(from);
                let (tx, ty) = self.coords(to);
                // Dimension order: correct X first, then Y.
                if fx != tx {
                    let nx = if tx > fx { fx + 1 } else { fx - 1 };
                    self.node_at(nx, fy)
                } else {
                    let ny = if ty > fy { fy + 1 } else { fy - 1 };
                    self.node_at(fx, ny)
                }
            }
            Topology::Torus2D { width, height } => {
                let (fx, fy) = self.coords(from);
                let (tx, ty) = self.coords(to);
                if fx != tx {
                    let nx = Self::torus_step(fx, tx, width);
                    self.node_at(nx, fy)
                } else {
                    let ny = Self::torus_step(fy, ty, height);
                    self.node_at(fx, ny)
                }
            }
            Topology::Ring { nodes } => {
                let next = (from.index() as u16 + 1) % nodes;
                NodeId::from_index(next as usize)
            }
            Topology::FullyConnected { .. } => to,
        }
    }

    /// One torus step from `f` toward `t` in a dimension of extent `n`,
    /// taking the shorter way (ties break positive).
    fn torus_step(f: u16, t: u16, n: u16) -> u16 {
        let fwd = (t + n - f) % n; // steps going +1
        let bwd = (f + n - t) % n; // steps going -1
        if fwd <= bwd {
            (f + 1) % n
        } else {
            (f + n - 1) % n
        }
    }

    /// Number of hops on the route from `a` to `b` (0 when equal).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Mesh2D { .. } => {
                let (ax, ay) = self.coords(a);
                let (bx, by) = self.coords(b);
                (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
            }
            Topology::Torus2D { width, height } => {
                let (ax, ay) = self.coords(a);
                let (bx, by) = self.coords(b);
                let dx = ax.abs_diff(bx).min(width - ax.abs_diff(bx));
                let dy = ay.abs_diff(by).min(height - ay.abs_diff(by));
                (dx + dy) as u32
            }
            Topology::Ring { nodes } => {
                ((b.index() as u16 + nodes - a.index() as u16) % nodes) as u32
            }
            Topology::FullyConnected { .. } => 1,
        }
    }

    /// Minimum directed hop count from any node in `from` to any node in
    /// `to` (inclusive 1-based id ranges) — the pairwise lookahead bound the
    /// conservative parallel engine uses: an event chain originating in one
    /// lane range needs at least this many physical hops to influence the
    /// other. [`Topology::hops`] is the full-graph shortest distance for
    /// every variant (and directed for the unidirectional ring), and
    /// outages only ever *remove* links, so the healthy-topology value is a
    /// valid lower bound under any reroute.
    ///
    /// Returns 0 when the ranges overlap (no cross-range slack exists).
    pub fn min_range_hops(&self, from: (u16, u16), to: (u16, u16)) -> u32 {
        debug_assert!(from.0 >= 1 && from.0 <= from.1 && from.1 <= self.num_nodes());
        debug_assert!(to.0 >= 1 && to.0 <= to.1 && to.1 <= self.num_nodes());
        if from.0 <= to.1 && to.0 <= from.1 {
            return 0;
        }
        let mut best = u32::MAX;
        for a in from.0..=from.1 {
            for b in to.0..=to.1 {
                best = best.min(self.hops(NodeId::new(a), NodeId::new(b)));
            }
        }
        best
    }

    /// All nodes exactly `d` hops from `from` (useful for placing memory
    /// servers at a chosen distance, as the paper's Fig. 7 does).
    pub fn nodes_at_distance(&self, from: NodeId, d: u32) -> Vec<NodeId> {
        (1..=self.num_nodes())
            .map(NodeId::new)
            .filter(|&n| n != from && self.hops(from, n) == d)
            .collect()
    }

    /// The full route from `a` to `b` (excluding `a`, including `b`).
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = a;
        while cur != b {
            cur = self.next_hop(cur, b);
            path.push(cur);
            assert!(
                path.len() <= self.num_nodes() as usize,
                "routing loop from {a} to {b}"
            );
        }
        path
    }

    /// Directed neighbor pairs `(u, v)` for which a physical link exists.
    pub fn links(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.num_nodes();
        let mut out = Vec::new();
        match *self {
            Topology::Mesh2D { width, height } | Topology::Torus2D { width, height } => {
                let wrap = matches!(self, Topology::Torus2D { .. });
                for y in 0..height {
                    for x in 0..width {
                        let u = self.node_at(x, y);
                        let mut push = |v: NodeId| {
                            out.push((u, v));
                        };
                        if x + 1 < width {
                            push(self.node_at(x + 1, y));
                        } else if wrap && width > 1 {
                            push(self.node_at(0, y));
                        }
                        if x > 0 {
                            push(self.node_at(x - 1, y));
                        } else if wrap && width > 1 {
                            push(self.node_at(width - 1, y));
                        }
                        if y + 1 < height {
                            push(self.node_at(x, y + 1));
                        } else if wrap && height > 1 {
                            push(self.node_at(x, 0));
                        }
                        if y > 0 {
                            push(self.node_at(x, y - 1));
                        } else if wrap && height > 1 {
                            push(self.node_at(x, height - 1));
                        }
                    }
                }
            }
            Topology::Ring { nodes } => {
                for i in 0..nodes {
                    out.push((
                        NodeId::from_index(i as usize),
                        NodeId::from_index(((i + 1) % nodes) as usize),
                    ));
                }
            }
            Topology::FullyConnected { .. } => {
                for u in 1..=n {
                    for v in 1..=n {
                        if u != v {
                            out.push((NodeId::new(u), NodeId::new(v)));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn prototype_is_4x4() {
        let t = Topology::prototype();
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.coords(n(1)), (0, 0));
        assert_eq!(t.coords(n(4)), (3, 0));
        assert_eq!(t.coords(n(5)), (0, 1));
        assert_eq!(t.coords(n(16)), (3, 3));
        assert_eq!(t.node_at(3, 3), n(16));
    }

    #[test]
    fn mesh_hops_are_manhattan() {
        let t = Topology::prototype();
        assert_eq!(t.hops(n(1), n(1)), 0);
        assert_eq!(t.hops(n(1), n(2)), 1);
        assert_eq!(t.hops(n(1), n(16)), 6);
        assert_eq!(t.hops(n(4), n(13)), 6);
        assert_eq!(t.hops(n(6), n(11)), 2);
    }

    #[test]
    fn mesh_route_is_x_then_y() {
        let t = Topology::prototype();
        // 1 (0,0) -> 11 (2,2): expect x-steps to (2,0) then y-steps.
        let route = t.route(n(1), n(11));
        assert_eq!(route, vec![n(2), n(3), n(7), n(11)]);
    }

    #[test]
    fn mesh_routes_are_minimal() {
        let t = Topology::prototype();
        for a in 1..=16 {
            for b in 1..=16 {
                if a == b {
                    continue;
                }
                let (a, b) = (n(a), n(b));
                assert_eq!(t.route(a, b).len() as u32, t.hops(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::Torus2D {
            width: 4,
            height: 4,
        };
        // (0,0) -> (3,0) is 1 hop the short way around.
        assert_eq!(t.hops(n(1), n(4)), 1);
        assert_eq!(t.next_hop(n(1), n(4)), n(4));
        // Opposite corner: 2 + 2 = 4 hops.
        assert_eq!(t.hops(n(1), n(11)), 4);
    }

    #[test]
    fn torus_routes_are_minimal() {
        let t = Topology::Torus2D {
            width: 4,
            height: 4,
        };
        for a in 1..=16 {
            for b in 1..=16 {
                if a == b {
                    continue;
                }
                let (a, b) = (n(a), n(b));
                assert_eq!(t.route(a, b).len() as u32, t.hops(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn ring_goes_one_way() {
        let t = Topology::Ring { nodes: 5 };
        assert_eq!(t.hops(n(1), n(2)), 1);
        assert_eq!(t.hops(n(2), n(1)), 4);
        assert_eq!(t.route(n(4), n(2)), vec![n(5), n(1), n(2)]);
    }

    #[test]
    fn fully_connected_is_one_hop() {
        let t = Topology::FullyConnected { nodes: 16 };
        for a in 1..=16 {
            for b in 1..=16 {
                if a != b {
                    assert_eq!(t.hops(n(a), n(b)), 1);
                    assert_eq!(t.next_hop(n(a), n(b)), n(b));
                }
            }
        }
    }

    #[test]
    fn nodes_at_distance() {
        let t = Topology::prototype();
        // From corner node 1: exactly two nodes at distance 1 (n2, n5).
        let d1 = t.nodes_at_distance(n(1), 1);
        assert_eq!(d1, vec![n(2), n(5)]);
        // Farthest corner is alone at distance 6.
        assert_eq!(t.nodes_at_distance(n(1), 6), vec![n(16)]);
        // Distances partition the other 15 nodes.
        let total: usize = (1..=6).map(|d| t.nodes_at_distance(n(1), d).len()).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn mesh_links_count() {
        // 4x4 mesh: 2 * (3*4 + 3*4) = 48 directed links.
        assert_eq!(Topology::prototype().links().len(), 48);
        // Torus adds wraparounds: every node has 4 out-links -> 64.
        assert_eq!(
            Topology::Torus2D {
                width: 4,
                height: 4
            }
            .links()
            .len(),
            64
        );
        assert_eq!(Topology::Ring { nodes: 5 }.links().len(), 5);
        assert_eq!(Topology::FullyConnected { nodes: 4 }.links().len(), 12);
    }

    #[test]
    fn links_are_between_adjacent_nodes() {
        let t = Topology::prototype();
        for (u, v) in t.links() {
            assert_eq!(t.hops(u, v), 1, "link {u}->{v} not unit distance");
        }
    }

    #[test]
    #[should_panic(expected = "from == to")]
    fn next_hop_same_node_panics() {
        Topology::prototype().next_hop(n(1), n(1));
    }
}
